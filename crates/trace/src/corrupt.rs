//! Deterministic, seeded corruption injection for traces, with labelled
//! oracles — the adversarial twin of `ksim::faults`.
//!
//! `ksim` taught this codebase the pattern: never inject a deviation
//! without recording exactly what was injected and where, so recovery can
//! be *scored* rather than eyeballed. [`inject`] applies one
//! [`CorruptionClass`] to a well-formed trace and returns an [`Injection`]
//! carrying the corrupted artifact (an event-level [`Trace`], an encoded
//! byte container, or both) plus the [`Oracle`] stating what the resilient
//! pipeline must observe:
//!
//! * semantic classes (dropped/duplicated events, timestamp regressions,
//!   dangling alloc ids, double frees, unbalanced lock ops) carry the
//!   exact `(QuarantineClass, event index)` entries that
//!   `db::resilient::import_resilient` must report — no more, no fewer;
//! * byte-level classes (mid-record truncation, length-prefix bit flips)
//!   carry the byte position of the damage and, for truncation, the exact
//!   intact-prefix length `codec::read_trace_salvage` must recover.
//!
//! Injection sites are chosen by replaying the trace with the same state
//! model the detector uses, so a candidate site is one where the injected
//! anomaly is observable in isolation — e.g. a `DoubleFree` is only
//! planted after a free that actually freed something, and a
//! `DuplicateEvent` only duplicates a release that emptied its held-lock
//! entry (duplicating a reentrant release would merely decrement a count
//! and prove nothing). All choices are driven by the `seed`; equal seeds
//! produce equal injections.

use crate::codec::{write_event, write_meta, write_trace, write_varint, MAGIC};
use crate::db::resilient::QuarantineClass;
use crate::event::{ContextKind, Event, SourceLoc, Trace, TraceEvent};
use crate::ids::{Addr, AllocId, LockId, TaskId};
use lockdoc_platform::rng::Rng;
use std::collections::{BTreeMap, HashMap};

/// The corruption classes [`inject`] can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionClass {
    /// Cut the encoded container mid-record.
    TruncateTail,
    /// Flip one bit inside the encoded metadata region (where length
    /// prefixes live).
    LengthPrefixBitFlip,
    /// Remove an `Alloc` event, leaving its later `Free` dangling.
    DropEvent,
    /// Duplicate a `LockRelease`, unbalancing its flow.
    DuplicateEvent,
    /// Rewind one event's timestamp below the running maximum.
    TimestampRegression,
    /// Insert a `Free` of an allocation id that never existed.
    DanglingAllocId,
    /// Insert a second `Free` of an already-freed allocation.
    DoubleFree,
    /// Insert a `LockRelease` of a registered lock the flow does not hold.
    UnbalancedLock,
}

impl CorruptionClass {
    /// Every class, in a stable order.
    pub const ALL: [CorruptionClass; 8] = [
        CorruptionClass::TruncateTail,
        CorruptionClass::LengthPrefixBitFlip,
        CorruptionClass::DropEvent,
        CorruptionClass::DuplicateEvent,
        CorruptionClass::TimestampRegression,
        CorruptionClass::DanglingAllocId,
        CorruptionClass::DoubleFree,
        CorruptionClass::UnbalancedLock,
    ];

    /// The classes whose oracle is an exact quarantine expectation.
    pub const EVENT_LEVEL: [CorruptionClass; 6] = [
        CorruptionClass::DropEvent,
        CorruptionClass::DuplicateEvent,
        CorruptionClass::TimestampRegression,
        CorruptionClass::DanglingAllocId,
        CorruptionClass::DoubleFree,
        CorruptionClass::UnbalancedLock,
    ];

    /// The classes that damage the encoded byte container.
    pub const BYTE_LEVEL: [CorruptionClass; 2] = [
        CorruptionClass::TruncateTail,
        CorruptionClass::LengthPrefixBitFlip,
    ];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            CorruptionClass::TruncateTail => "truncate_tail",
            CorruptionClass::LengthPrefixBitFlip => "length_prefix_bit_flip",
            CorruptionClass::DropEvent => "drop_event",
            CorruptionClass::DuplicateEvent => "duplicate_event",
            CorruptionClass::TimestampRegression => "timestamp_regression",
            CorruptionClass::DanglingAllocId => "dangling_alloc_id",
            CorruptionClass::DoubleFree => "double_free",
            CorruptionClass::UnbalancedLock => "unbalanced_lock",
        }
    }
}

impl std::fmt::Display for CorruptionClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the resilient pipeline must observe for one injection.
#[derive(Debug, Clone, PartialEq)]
pub enum Oracle {
    /// Exact quarantine expectation: `import_resilient` in lenient mode
    /// must report precisely these `(class, event index)` pairs, and
    /// strict mode must refuse with the first of them.
    Quarantine(Vec<(QuarantineClass, u64)>),
    /// Mid-record truncation: `read_trace` must fail; `read_trace_salvage`
    /// must recover exactly the first `intact_events` events unchanged and
    /// diagnose the first failure at byte `cut_record_offset`.
    Truncated {
        /// Number of whole records before the cut.
        intact_events: usize,
        /// Byte offset of the record the cut landed in.
        cut_record_offset: usize,
    },
    /// Metadata bit flip: decoding must fail typed or succeed — never
    /// panic, never hang, never over-allocate.
    MetaDamage {
        /// Byte offset of the flipped bit.
        offset: usize,
        /// The flipped bit mask.
        bit: u8,
    },
}

/// One injected corruption: the corrupted artifact plus its oracle.
#[derive(Debug, Clone)]
pub struct Injection {
    /// The class that was injected.
    pub class: CorruptionClass,
    /// Corrupted event-level trace (`None` for byte-level classes).
    pub trace: Option<Trace>,
    /// Corrupted encoded container. `None` for
    /// [`CorruptionClass::TimestampRegression`]: the delta codec cannot
    /// represent time travel, which is exactly why that class exists only
    /// at the event level (JSON input, programmatic construction).
    pub bytes: Option<Vec<u8>>,
    /// What recovery must observe.
    pub oracle: Oracle,
}

/// Candidate injection sites discovered by replaying the trace with the
/// detector's state model.
#[derive(Debug, Default)]
struct Sites {
    /// `(event index, alloc id)` of frees that freed a live allocation.
    effective_frees: Vec<(usize, u64)>,
    /// `(alloc event index, free event index)` pairs safe to orphan: the
    /// allocation is freed later, no lock was ever registered inside its
    /// range, and the range is never re-allocated.
    droppable_allocs: Vec<(usize, usize)>,
    /// `(event index, running max before it)` of accesses whose timestamp
    /// can rewind without side effects beyond the quarantine itself.
    ts_regressions: Vec<(usize, u64)>,
    /// Releases that empty their held-lock entry (count 1 → gone); a
    /// duplicate right after is observably unmatched.
    emptying_releases: Vec<usize>,
    /// Boundaries `p` (insert before event `p`, or at the end for
    /// `p == len`) where the current flow holds no lock but at least one
    /// lock is registered — an inserted release there is unbalanced.
    quiet_boundaries: Vec<usize>,
    /// Largest allocation id ever seen (fresh ids start above it).
    max_alloc_id: u64,
}

/// Replay state shared by the site scan and the boundary re-scan.
#[derive(Debug)]
struct Replay {
    allocs: HashMap<AllocId, (Addr, u32, bool)>,
    active_allocs: BTreeMap<Addr, AllocId>,
    active_locks: BTreeMap<Addr, (LockId, bool)>,
    n_locks: u32,
    current_task: TaskId,
    ctx_stack: Vec<ContextKind>,
    held: HashMap<FlowId, Vec<(LockId, u32)>>,
}

impl Default for Replay {
    fn default() -> Self {
        Replay {
            allocs: HashMap::new(),
            active_allocs: BTreeMap::new(),
            active_locks: BTreeMap::new(),
            n_locks: 0,
            current_task: TaskId(0),
            ctx_stack: Vec::new(),
            held: HashMap::new(),
        }
    }
}

/// Flow identity for the replay (equivalent to `db::schema::FlowKey`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FlowId {
    Task(TaskId),
    Irq(u8),
}

impl Replay {
    fn flow(&self) -> FlowId {
        match self.ctx_stack.last() {
            Some(ContextKind::Softirq) => FlowId::Irq(0),
            Some(ContextKind::Hardirq) => FlowId::Irq(1),
            _ => FlowId::Task(self.current_task),
        }
    }

    /// Applies one event's state effects, returning which candidate kind
    /// (if any) this event represents. Mirrors the detector: events a
    /// clean trace should not contain are simply not candidates.
    fn step(&mut self, ev: &Event) -> Option<Candidate> {
        match ev {
            Event::LockInit { addr, flavor, .. } => {
                self.active_locks
                    .insert(*addr, (LockId(self.n_locks), flavor.reentrant()));
                self.n_locks += 1;
                Some(Candidate::LockInit { addr: *addr })
            }
            Event::Alloc { id, addr, size, .. } => {
                if self.allocs.contains_key(id) {
                    return None;
                }
                self.allocs.insert(*id, (*addr, *size, false));
                self.active_allocs.insert(*addr, *id);
                Some(Candidate::Alloc)
            }
            Event::Free { id } => match self.allocs.get_mut(id) {
                Some(info) if !info.2 => {
                    info.2 = true;
                    let (addr, size) = (info.0, info.1);
                    self.active_allocs.remove(&addr);
                    let end = addr.saturating_add(u64::from(size));
                    self.active_locks.retain(|&a, _| !(a >= addr && a < end));
                    Some(Candidate::EffectiveFree { id: id.0 })
                }
                _ => None,
            },
            Event::LockAcquire { addr, .. } => {
                let &(lock, reentrant) = self.active_locks.get(addr)?;
                let flow = self.flow();
                let held = self.held.entry(flow).or_default();
                if reentrant {
                    if let Some(e) = held.iter_mut().find(|(l, _)| *l == lock) {
                        e.1 += 1;
                        return None;
                    }
                }
                held.push((lock, 1));
                None
            }
            Event::LockRelease { addr, .. } => {
                let &(lock, _) = self.active_locks.get(addr)?;
                let flow = self.flow();
                let held = self.held.entry(flow).or_default();
                let pos = held.iter().rposition(|(l, _)| *l == lock)?;
                if held[pos].1 > 1 {
                    held[pos].1 -= 1;
                    None
                } else {
                    held.remove(pos);
                    Some(Candidate::EmptyingRelease)
                }
            }
            Event::MemAccess { .. } => Some(Candidate::Access),
            Event::TaskSwitch { task } => {
                self.current_task = *task;
                None
            }
            Event::ContextEnter { kind } => {
                self.ctx_stack.push(*kind);
                None
            }
            Event::ContextExit { kind } => {
                if self.ctx_stack.last() == Some(kind) {
                    self.ctx_stack.pop();
                }
                None
            }
            _ => None,
        }
    }

    /// Whether the current flow holds no lock while locks are registered.
    fn is_quiet(&self) -> bool {
        !self.active_locks.is_empty()
            && self
                .held
                .get(&self.flow())
                .map(|h| h.is_empty())
                .unwrap_or(true)
    }
}

enum Candidate {
    LockInit { addr: Addr },
    Alloc,
    EffectiveFree { id: u64 },
    EmptyingRelease,
    Access,
}

/// Scans the trace once, collecting every candidate site per class.
fn scan(trace: &Trace) -> Sites {
    let mut sites = Sites::default();
    let mut rp = Replay::default();
    let mut max_ts = 0u64;
    // Range bookkeeping for DropEvent safety: (addr, end, alloc event
    // index, free event index, tainted).
    struct RangeInfo {
        addr: Addr,
        end: Addr,
        alloc_idx: usize,
        free_idx: Option<usize>,
        tainted: bool,
    }
    let mut ranges: Vec<RangeInfo> = Vec::new();
    let mut range_of: HashMap<u64, usize> = HashMap::new();

    for (i, te) in trace.events.iter().enumerate() {
        if rp.is_quiet() {
            sites.quiet_boundaries.push(i);
        }
        if let Event::Alloc { id, addr, size, .. } = &te.event {
            sites.max_alloc_id = sites.max_alloc_id.max(id.0);
            let end = addr.saturating_add(u64::from(*size));
            for r in &mut ranges {
                if *addr < r.end && r.addr < end {
                    r.tainted = true;
                }
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = range_of.entry(id.0) {
                slot.insert(ranges.len());
                ranges.push(RangeInfo {
                    addr: *addr,
                    end,
                    alloc_idx: i,
                    free_idx: None,
                    tainted: false,
                });
            }
        }
        match rp.step(&te.event) {
            Some(Candidate::LockInit { addr }) => {
                for r in &mut ranges {
                    if addr >= r.addr && addr < r.end {
                        r.tainted = true;
                    }
                }
            }
            Some(Candidate::Alloc) => {}
            Some(Candidate::EffectiveFree { id }) => {
                sites.effective_frees.push((i, id));
                if let Some(&ri) = range_of.get(&id) {
                    if ranges[ri].free_idx.is_none() {
                        ranges[ri].free_idx = Some(i);
                    }
                }
            }
            Some(Candidate::EmptyingRelease) => sites.emptying_releases.push(i),
            Some(Candidate::Access) if max_ts >= 1 => {
                sites.ts_regressions.push((i, max_ts));
            }
            Some(Candidate::Access) => {}
            None => {}
        }
        max_ts = max_ts.max(te.ts);
    }
    if rp.is_quiet() {
        sites.quiet_boundaries.push(trace.events.len());
    }
    sites.droppable_allocs = ranges
        .iter()
        .filter(|r| !r.tainted)
        .filter_map(|r| r.free_idx.map(|f| (r.alloc_idx, f)))
        .collect();
    sites
}

/// Replays the trace up to boundary `p` and returns the registered lock
/// addresses at that point, in address order.
fn active_lock_addrs_at(trace: &Trace, p: usize) -> Vec<Addr> {
    let mut rp = Replay::default();
    for te in trace.events.iter().take(p) {
        rp.step(&te.event);
    }
    rp.active_locks.keys().copied().collect()
}

/// Timestamp for an event inserted at boundary `p` that keeps the stream
/// monotonic: the predecessor's timestamp (or the first event's for
/// `p == 0`).
fn insert_ts(trace: &Trace, p: usize) -> u64 {
    if p == 0 {
        trace.events.first().map(|e| e.ts).unwrap_or(0)
    } else {
        trace.events[p - 1].ts
    }
}

fn insert_event(trace: &Trace, p: usize, event: Event) -> Trace {
    let mut events = Vec::with_capacity(trace.events.len() + 1);
    events.extend_from_slice(&trace.events[..p]);
    events.push(TraceEvent {
        ts: insert_ts(trace, p),
        event,
    });
    events.extend_from_slice(&trace.events[p..]);
    Trace {
        meta: trace.meta.clone(),
        events,
    }
}

fn encode(trace: &Trace) -> Option<Vec<u8>> {
    let mut buf = Vec::new();
    write_trace(trace, &mut buf).ok()?;
    Some(buf)
}

/// Injects one corruption of `class` into `trace`, driven by `seed`.
///
/// Returns `None` when the trace offers no safe injection site for the
/// class (e.g. `DoubleFree` on a trace with no effective free) or when the
/// base trace itself cannot be encoded. Equal `(trace, class, seed)`
/// inputs produce identical injections.
pub fn inject(trace: &Trace, class: CorruptionClass, seed: u64) -> Option<Injection> {
    let mut rng = Rng::seed_from_u64(seed);
    let sites = scan(trace);
    match class {
        CorruptionClass::TruncateTail => {
            // Encode with per-record offsets so the cut provably lands
            // strictly inside record `k`.
            let mut buf = Vec::new();
            buf.extend_from_slice(MAGIC);
            write_meta(&mut buf, &trace.meta).ok()?;
            write_varint(&mut buf, trace.events.len() as u64).ok()?;
            let mut offsets = Vec::with_capacity(trace.events.len());
            let mut last_ts = 0u64;
            for te in &trace.events {
                offsets.push(buf.len());
                write_varint(&mut buf, te.ts.checked_sub(last_ts)?).ok()?;
                last_ts = te.ts;
                write_event(&mut buf, &te.event).ok()?;
            }
            if offsets.is_empty() {
                return None;
            }
            let k = rng.gen_range(0..offsets.len());
            let end_k = offsets.get(k + 1).copied().unwrap_or(buf.len());
            let cut = rng.gen_range(offsets[k] + 1..end_k);
            buf.truncate(cut);
            Some(Injection {
                class,
                trace: None,
                bytes: Some(buf),
                oracle: Oracle::Truncated {
                    intact_events: k,
                    cut_record_offset: offsets[k],
                },
            })
        }
        CorruptionClass::LengthPrefixBitFlip => {
            let mut meta_buf = Vec::new();
            write_meta(&mut meta_buf, &trace.meta).ok()?;
            let bytes = encode(trace)?;
            // Bias half the draws onto the very first varint (the string
            // count), the highest-leverage length prefix in the container.
            let offset = if rng.gen_bool(0.5) {
                MAGIC.len()
            } else {
                MAGIC.len() + rng.gen_range(0..meta_buf.len())
            };
            let bit = 1u8 << rng.gen_range(0u32..8);
            let mut damaged = bytes;
            damaged[offset] ^= bit;
            Some(Injection {
                class,
                trace: None,
                bytes: Some(damaged),
                oracle: Oracle::MetaDamage { offset, bit },
            })
        }
        CorruptionClass::DropEvent => {
            let &(alloc_idx, free_idx) = rng.choose(&sites.droppable_allocs)?;
            let mut events = trace.events.clone();
            events.remove(alloc_idx);
            let corrupted = Trace {
                meta: trace.meta.clone(),
                events,
            };
            // The orphaned free sits one position earlier now.
            let oracle =
                Oracle::Quarantine(vec![(QuarantineClass::DanglingFree, (free_idx - 1) as u64)]);
            let bytes = encode(&corrupted);
            Some(Injection {
                class,
                trace: Some(corrupted),
                bytes,
                oracle,
            })
        }
        CorruptionClass::DuplicateEvent => {
            let &idx = rng.choose(&sites.emptying_releases)?;
            let corrupted = insert_event(trace, idx + 1, trace.events[idx].event.clone());
            let oracle =
                Oracle::Quarantine(vec![(QuarantineClass::UnbalancedRelease, (idx + 1) as u64)]);
            let bytes = encode(&corrupted);
            Some(Injection {
                class,
                trace: Some(corrupted),
                bytes,
                oracle,
            })
        }
        CorruptionClass::TimestampRegression => {
            let &(idx, max_before) = rng.choose(&sites.ts_regressions)?;
            let mut events = trace.events.clone();
            events[idx].ts = rng.gen_range(0..max_before);
            let corrupted = Trace {
                meta: trace.meta.clone(),
                events,
            };
            let oracle =
                Oracle::Quarantine(vec![(QuarantineClass::TimestampRegression, idx as u64)]);
            // No `bytes`: the delta codec cannot represent time travel
            // (write_trace refuses with CodecError::NonMonotonic).
            Some(Injection {
                class,
                trace: Some(corrupted),
                bytes: None,
                oracle,
            })
        }
        CorruptionClass::DanglingAllocId => {
            let p = rng.gen_range(0..trace.events.len() + 1);
            let fresh = sites.max_alloc_id + 1 + rng.gen_range(0u64..1000);
            let corrupted = insert_event(trace, p, Event::Free { id: AllocId(fresh) });
            let oracle = Oracle::Quarantine(vec![(QuarantineClass::DanglingFree, p as u64)]);
            let bytes = encode(&corrupted);
            Some(Injection {
                class,
                trace: Some(corrupted),
                bytes,
                oracle,
            })
        }
        CorruptionClass::DoubleFree => {
            let &(idx, id) = rng.choose(&sites.effective_frees)?;
            let corrupted = insert_event(trace, idx + 1, Event::Free { id: AllocId(id) });
            let oracle = Oracle::Quarantine(vec![(QuarantineClass::DoubleFree, (idx + 1) as u64)]);
            let bytes = encode(&corrupted);
            Some(Injection {
                class,
                trace: Some(corrupted),
                bytes,
                oracle,
            })
        }
        CorruptionClass::UnbalancedLock => {
            let &p = rng.choose(&sites.quiet_boundaries)?;
            let addrs = active_lock_addrs_at(trace, p);
            let &addr = rng.choose(&addrs)?;
            // The release needs a valid source location; intern a marker
            // file into the (cloned) metadata. Appending to the interner
            // never invalidates existing symbols.
            let mut corrupted = insert_event(trace, p, Event::Free { id: AllocId(0) });
            let file = corrupted.meta_mut().strings.intern("corrupt.c");
            corrupted.events[p].event = Event::LockRelease {
                addr,
                loc: SourceLoc::new(file, 4242),
            };
            let oracle = Oracle::Quarantine(vec![(QuarantineClass::UnbalancedRelease, p as u64)]);
            let bytes = encode(&corrupted);
            Some(Injection {
                class,
                trace: Some(corrupted),
                bytes,
                oracle,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessKind, AcquireMode, DataTypeDef, LockFlavor, MemberDef};

    fn base() -> Trace {
        let mut tr = Trace::new();
        let file = tr.meta_mut().strings.intern("gen.c");
        let lname = tr.meta_mut().strings.intern("l0");
        let dt = tr.meta_mut().add_data_type(DataTypeDef {
            name: "obj".into(),
            size: 32,
            members: vec![MemberDef {
                name: "m0".into(),
                offset: 0,
                size: 8,
                atomic: false,
                is_lock: false,
            }],
        });
        let task = tr.meta_mut().add_task("t0");
        tr.push(1, Event::TaskSwitch { task });
        tr.push(
            2,
            Event::LockInit {
                addr: 0x100,
                name: lname,
                flavor: LockFlavor::Spinlock,
                is_static: true,
            },
        );
        tr.push(
            3,
            Event::Alloc {
                id: AllocId(1),
                addr: 0x1000,
                size: 32,
                data_type: dt,
                subclass: None,
            },
        );
        tr.push(
            4,
            Event::LockAcquire {
                addr: 0x100,
                mode: AcquireMode::Exclusive,
                loc: SourceLoc::new(file, 1),
            },
        );
        tr.push(
            5,
            Event::MemAccess {
                kind: AccessKind::Write,
                addr: 0x1000,
                size: 8,
                loc: SourceLoc::new(file, 2),
                atomic: false,
            },
        );
        tr.push(
            6,
            Event::LockRelease {
                addr: 0x100,
                loc: SourceLoc::new(file, 3),
            },
        );
        tr.push(7, Event::Free { id: AllocId(1) });
        tr
    }

    #[test]
    fn every_class_finds_a_site_in_the_canonical_base() {
        for class in CorruptionClass::ALL {
            assert!(
                inject(&base(), class, 7).is_some(),
                "no site for {class} in the canonical base trace"
            );
        }
    }

    #[test]
    fn injection_is_seed_deterministic() {
        for class in CorruptionClass::ALL {
            let a = inject(&base(), class, 42).unwrap();
            let b = inject(&base(), class, 42).unwrap();
            assert_eq!(a.oracle, b.oracle, "{class}");
            assert_eq!(a.bytes, b.bytes, "{class}");
            assert_eq!(a.trace, b.trace, "{class}");
        }
    }

    #[test]
    fn sites_respect_safety_restrictions() {
        let sites = scan(&base());
        // The only alloc is freed, untouched by LockInit, never reused.
        assert_eq!(sites.droppable_allocs, vec![(2, 6)]);
        assert_eq!(sites.effective_frees, vec![(6, 1)]);
        // The balanced release empties its held entry.
        assert_eq!(sites.emptying_releases, vec![5]);
        // Quiet boundaries exist only where the lock is registered and
        // not held: before events 3 and 4, and after the release.
        assert_eq!(sites.quiet_boundaries, vec![2, 3, 6, 7]);
        assert_eq!(sites.max_alloc_id, 1);
    }

    #[test]
    fn reentrant_release_is_not_a_duplicate_site() {
        let mut tr = Trace::new();
        let file = tr.meta_mut().strings.intern("r.c");
        let rcu = tr.meta_mut().strings.intern("rcu");
        tr.meta_mut().add_task("t0");
        let loc = SourceLoc::new(file, 1);
        tr.push(0, Event::TaskSwitch { task: TaskId(0) });
        tr.push(
            1,
            Event::LockInit {
                addr: 0x10,
                name: rcu,
                flavor: LockFlavor::Rcu,
                is_static: true,
            },
        );
        tr.push(
            2,
            Event::LockAcquire {
                addr: 0x10,
                mode: AcquireMode::Shared,
                loc,
            },
        );
        tr.push(
            3,
            Event::LockAcquire {
                addr: 0x10,
                mode: AcquireMode::Shared,
                loc,
            },
        );
        tr.push(4, Event::LockRelease { addr: 0x10, loc }); // count 2 -> 1
        tr.push(5, Event::LockRelease { addr: 0x10, loc }); // count 1 -> gone
        let sites = scan(&tr);
        // Only the emptying release (event 5) is a candidate: duplicating
        // event 4 would merely decrement the count, observably nothing.
        assert_eq!(sites.emptying_releases, vec![5]);
    }
}
