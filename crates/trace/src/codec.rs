//! Compact binary serialization of traces, plus a CSV event dump.
//!
//! The paper's tracing phase writes an event log from the VM and later
//! converts it to CSV for the MariaDB import (Sec. 6). We provide a
//! self-describing binary container (`LDOC1`) with LEB128-style varints for
//! archival and an equivalent CSV dump for inspection with standard tools.

use crate::event::{
    AccessKind, AcquireMode, ContextKind, DataTypeDef, Event, LockFlavor, MemberDef, SourceLoc,
    Trace, TraceEvent, TraceMeta,
};
use crate::ids::{AllocId, DataTypeId, FnId, Interner, Sym, TaskId};
use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes identifying a LockDoc binary trace.
pub const MAGIC: &[u8; 5] = b"LDOC1";

/// Errors produced while encoding or decoding a trace.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// An unknown tag byte was encountered.
    BadTag(u8),
    /// A varint exceeded its maximum width.
    VarintOverflow,
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// Malformed CSV input (unbalanced quotes or stray quote characters).
    BadCsv(String),
    /// A trace to be encoded has a timestamp older than its predecessor;
    /// the delta codec cannot represent time travel.
    NonMonotonic {
        /// Index of the offending event.
        event_index: usize,
        /// Its timestamp.
        ts: u64,
        /// The (larger) timestamp of the preceding event.
        prev_ts: u64,
    },
    /// An event references a metadata id (string, type, function, task)
    /// that the trace's own tables do not contain.
    DanglingId(String),
    /// A count field (string/type/member/function/task table sizes, event
    /// count) does not fit in `usize` on this target. On 32-bit hosts a
    /// >4G count used to wrap silently; it now fails typed.
    CountOverflow,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::BadMagic => write!(f, "not a LockDoc trace (bad magic)"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte 0x{t:02x}"),
            CodecError::VarintOverflow => write!(f, "varint overflow"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string payload"),
            CodecError::BadCsv(m) => write!(f, "malformed csv: {m}"),
            CodecError::NonMonotonic {
                event_index,
                ts,
                prev_ts,
            } => write!(
                f,
                "non-monotonic timestamp at event {event_index}: {ts} after {prev_ts}"
            ),
            CodecError::DanglingId(what) => write!(f, "dangling id in trace: {what}"),
            CodecError::CountOverflow => {
                write!(f, "count does not fit in usize on this target")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, CodecError>;

pub(crate) fn write_varint<W: Write>(w: &mut W, mut v: u64) -> Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        let byte = buf[0];
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Reads a table/event count, rejecting values that do not fit in `usize`
/// on the current target instead of truncating them with `as`.
fn read_count<R: Read>(r: &mut R) -> Result<usize> {
    usize::try_from(read_varint(r)?).map_err(|_| CodecError::CountOverflow)
}

fn write_str<W: Write>(w: &mut W, s: &str) -> Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

fn read_str<R: Read>(r: &mut R) -> Result<String> {
    let len = read_varint(r)?;
    // Guard against corrupted length prefixes: grow the buffer as bytes
    // actually arrive instead of pre-allocating an attacker-chosen size.
    let mut buf = Vec::new();
    let n = r.take(len).read_to_end(&mut buf)?;
    if n as u64 != len {
        return Err(CodecError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated string payload",
        )));
    }
    String::from_utf8(buf).map_err(|_| CodecError::BadUtf8)
}

fn write_bool<W: Write>(w: &mut W, b: bool) -> Result<()> {
    w.write_all(&[u8::from(b)])?;
    Ok(())
}

fn read_bool<R: Read>(r: &mut R) -> Result<bool> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0] != 0)
}

fn flavor_tag(f: LockFlavor) -> u8 {
    match f {
        LockFlavor::Spinlock => 0,
        LockFlavor::Rwlock => 1,
        LockFlavor::Mutex => 2,
        LockFlavor::Semaphore => 3,
        LockFlavor::RwSemaphore => 4,
        LockFlavor::Seqlock => 5,
        LockFlavor::Rcu => 6,
        LockFlavor::Softirq => 7,
        LockFlavor::Hardirq => 8,
    }
}

fn flavor_from_tag(t: u8) -> Result<LockFlavor> {
    Ok(match t {
        0 => LockFlavor::Spinlock,
        1 => LockFlavor::Rwlock,
        2 => LockFlavor::Mutex,
        3 => LockFlavor::Semaphore,
        4 => LockFlavor::RwSemaphore,
        5 => LockFlavor::Seqlock,
        6 => LockFlavor::Rcu,
        7 => LockFlavor::Softirq,
        8 => LockFlavor::Hardirq,
        other => return Err(CodecError::BadTag(other)),
    })
}

fn ctx_tag(c: ContextKind) -> u8 {
    match c {
        ContextKind::Task => 0,
        ContextKind::Softirq => 1,
        ContextKind::Hardirq => 2,
    }
}

fn ctx_from_tag(t: u8) -> Result<ContextKind> {
    Ok(match t {
        0 => ContextKind::Task,
        1 => ContextKind::Softirq,
        2 => ContextKind::Hardirq,
        other => return Err(CodecError::BadTag(other)),
    })
}

fn write_loc<W: Write>(w: &mut W, loc: SourceLoc) -> Result<()> {
    write_varint(w, u64::from(loc.file.0))?;
    write_varint(w, u64::from(loc.line))?;
    Ok(())
}

fn read_loc<R: Read>(r: &mut R) -> Result<SourceLoc> {
    let file = Sym(read_varint(r)? as u32);
    let line = read_varint(r)? as u32;
    Ok(SourceLoc { file, line })
}

pub(crate) fn write_meta<W: Write>(w: &mut W, meta: &TraceMeta) -> Result<()> {
    write_varint(w, meta.strings.len() as u64)?;
    for (_, s) in meta.strings.iter() {
        write_str(w, s)?;
    }
    write_varint(w, meta.data_types.len() as u64)?;
    for dt in &meta.data_types {
        write_str(w, &dt.name)?;
        write_varint(w, u64::from(dt.size))?;
        write_varint(w, dt.members.len() as u64)?;
        for m in &dt.members {
            write_str(w, &m.name)?;
            write_varint(w, u64::from(m.offset))?;
            write_varint(w, u64::from(m.size))?;
            write_bool(w, m.atomic)?;
            write_bool(w, m.is_lock)?;
        }
    }
    write_varint(w, meta.functions.len() as u64)?;
    for f in &meta.functions {
        write_str(w, f)?;
    }
    write_varint(w, meta.tasks.len() as u64)?;
    for t in &meta.tasks {
        write_str(w, t)?;
    }
    Ok(())
}

/// Default refill granularity of [`ChunkedDecoder`]; also the compaction
/// threshold for its consumed prefix.
const DEFAULT_CHUNK: usize = 64 * 1024;

/// Whether a decode failure only means "ran off the end of the currently
/// buffered bytes" — the chunked decoder refills and retries on these.
/// Within buffered data every `read_exact`/`take` exhaustion maps to
/// `ErrorKind::UnexpectedEof`, so the check is exact.
fn is_buffer_eof(e: &CodecError) -> bool {
    matches!(e, CodecError::Io(io) if io.kind() == io::ErrorKind::UnexpectedEof)
}

/// Incremental decoder over any [`Read`] source.
///
/// Bytes are pulled in `chunk`-sized refills and parsed out of an internal
/// buffer. A parse that runs off the buffered end is retried after a
/// refill, so every parser sees exactly the bytes a whole-slice decode
/// would — the chunked and slice paths are behaviorally identical,
/// including on corrupted input (the salvage resync scan probes the same
/// offsets with the same outcomes). Only the consumed prefix is ever
/// dropped, so peak memory is bounded by the largest single record plus
/// one chunk rather than the file size.
struct ChunkedDecoder<R> {
    src: R,
    chunk: usize,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    pos: usize,
    /// Absolute input offset of `buf[0]`.
    base: u64,
    /// The source reported end-of-input.
    eof: bool,
}

impl<R: Read> ChunkedDecoder<R> {
    fn new(src: R, chunk: usize) -> Self {
        Self {
            src,
            chunk: chunk.max(1),
            buf: Vec::new(),
            pos: 0,
            base: 0,
            eof: false,
        }
    }

    /// Pulls one more chunk from the source (sets `eof` on empty read).
    fn fill(&mut self) -> Result<()> {
        let old = self.buf.len();
        self.buf.resize(old + self.chunk, 0);
        let n = loop {
            match self.src.read(&mut self.buf[old..]) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.buf.truncate(old);
                    return Err(e.into());
                }
            }
        };
        self.buf.truncate(old + n);
        if n == 0 {
            self.eof = true;
        }
        Ok(())
    }

    /// Drops the consumed prefix once it exceeds one chunk.
    fn maybe_compact(&mut self) {
        if self.pos >= self.chunk {
            self.buf.drain(..self.pos);
            self.base += self.pos as u64;
            self.pos = 0;
        }
    }

    /// Absolute input offset of the next unconsumed byte.
    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Runs a slice parser over the buffered tail, refilling and retrying
    /// when it runs out of buffered bytes before the true end of input.
    fn decode<T>(&mut self, mut f: impl FnMut(&mut &[u8]) -> Result<T>) -> Result<T> {
        loop {
            let mut s = &self.buf[self.pos..];
            let before = s.len();
            match f(&mut s) {
                Ok(v) => {
                    self.pos += before - s.len();
                    return Ok(v);
                }
                Err(e) if !self.eof && is_buffer_eof(&e) => self.fill()?,
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether any unconsumed input remains (refills as needed to know).
    fn has_data(&mut self) -> Result<bool> {
        while self.pos == self.buf.len() && !self.eof {
            self.fill()?;
        }
        Ok(self.pos < self.buf.len())
    }

    /// Reads the source to its end and returns how many unconsumed bytes
    /// remain past the current position.
    fn count_remaining(&mut self) -> Result<u64> {
        while !self.eof {
            self.fill()?;
        }
        Ok((self.buf.len() - self.pos) as u64)
    }
}

fn read_magic(r: &mut &[u8]) -> Result<()> {
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    Ok(())
}

/// Decodes the metadata tables piecewise, so a refill mid-table retries
/// only the item that straddled the chunk boundary.
fn read_meta<R: Read>(d: &mut ChunkedDecoder<R>) -> Result<TraceMeta> {
    let mut strings = Interner::new();
    let nstr = d.decode(|r| read_count(r))?;
    for _ in 0..nstr {
        let s = d.decode(|r| read_str(r))?;
        strings.intern(&s);
        d.maybe_compact();
    }
    let ndt = d.decode(|r| read_count(r))?;
    let mut data_types = Vec::with_capacity(ndt.min(1 << 12));
    for _ in 0..ndt {
        let name = d.decode(|r| read_str(r))?;
        let size = d.decode(|r| Ok(read_varint(r)? as u32))?;
        let nmem = d.decode(|r| read_count(r))?;
        let mut members = Vec::with_capacity(nmem.min(1 << 12));
        for _ in 0..nmem {
            members.push(d.decode(|r| {
                Ok(MemberDef {
                    name: read_str(r)?,
                    offset: read_varint(r)? as u32,
                    size: read_varint(r)? as u32,
                    atomic: read_bool(r)?,
                    is_lock: read_bool(r)?,
                })
            })?);
            d.maybe_compact();
        }
        data_types.push(DataTypeDef {
            name,
            size,
            members,
        });
    }
    let nfn = d.decode(|r| read_count(r))?;
    let mut functions = Vec::with_capacity(nfn.min(1 << 12));
    for _ in 0..nfn {
        functions.push(d.decode(|r| read_str(r))?);
        d.maybe_compact();
    }
    let ntask = d.decode(|r| read_count(r))?;
    let mut tasks = Vec::with_capacity(ntask.min(1 << 12));
    for _ in 0..ntask {
        tasks.push(d.decode(|r| read_str(r))?);
        d.maybe_compact();
    }
    Ok(TraceMeta {
        strings,
        data_types,
        functions,
        tasks,
    })
}

const TAG_LOCK_INIT: u8 = 1;
const TAG_ALLOC: u8 = 2;
const TAG_FREE: u8 = 3;
const TAG_ACQUIRE: u8 = 4;
const TAG_RELEASE: u8 = 5;
const TAG_ACCESS: u8 = 6;
const TAG_FN_ENTER: u8 = 7;
const TAG_FN_EXIT: u8 = 8;
const TAG_TASK_SWITCH: u8 = 9;
const TAG_CTX_ENTER: u8 = 10;
const TAG_CTX_EXIT: u8 = 11;

pub(crate) fn write_event<W: Write>(w: &mut W, e: &Event) -> Result<()> {
    match e {
        Event::LockInit {
            addr,
            name,
            flavor,
            is_static,
        } => {
            w.write_all(&[TAG_LOCK_INIT])?;
            write_varint(w, *addr)?;
            write_varint(w, u64::from(name.0))?;
            w.write_all(&[flavor_tag(*flavor)])?;
            write_bool(w, *is_static)?;
        }
        Event::Alloc {
            id,
            addr,
            size,
            data_type,
            subclass,
        } => {
            w.write_all(&[TAG_ALLOC])?;
            write_varint(w, id.0)?;
            write_varint(w, *addr)?;
            write_varint(w, u64::from(*size))?;
            write_varint(w, u64::from(data_type.0))?;
            match subclass {
                Some(s) => {
                    write_bool(w, true)?;
                    write_varint(w, u64::from(s.0))?;
                }
                None => write_bool(w, false)?,
            }
        }
        Event::Free { id } => {
            w.write_all(&[TAG_FREE])?;
            write_varint(w, id.0)?;
        }
        Event::LockAcquire { addr, mode, loc } => {
            w.write_all(&[TAG_ACQUIRE])?;
            write_varint(w, *addr)?;
            write_bool(w, matches!(mode, AcquireMode::Exclusive))?;
            write_loc(w, *loc)?;
        }
        Event::LockRelease { addr, loc } => {
            w.write_all(&[TAG_RELEASE])?;
            write_varint(w, *addr)?;
            write_loc(w, *loc)?;
        }
        Event::MemAccess {
            kind,
            addr,
            size,
            loc,
            atomic,
        } => {
            w.write_all(&[TAG_ACCESS])?;
            write_bool(w, matches!(kind, AccessKind::Write))?;
            write_varint(w, *addr)?;
            w.write_all(&[*size])?;
            write_loc(w, *loc)?;
            write_bool(w, *atomic)?;
        }
        Event::FnEnter { func } => {
            w.write_all(&[TAG_FN_ENTER])?;
            write_varint(w, u64::from(func.0))?;
        }
        Event::FnExit { func } => {
            w.write_all(&[TAG_FN_EXIT])?;
            write_varint(w, u64::from(func.0))?;
        }
        Event::TaskSwitch { task } => {
            w.write_all(&[TAG_TASK_SWITCH])?;
            write_varint(w, u64::from(task.0))?;
        }
        Event::ContextEnter { kind } => {
            w.write_all(&[TAG_CTX_ENTER, ctx_tag(*kind)])?;
        }
        Event::ContextExit { kind } => {
            w.write_all(&[TAG_CTX_EXIT, ctx_tag(*kind)])?;
        }
    }
    Ok(())
}

fn read_event<R: Read>(r: &mut R) -> Result<Event> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        TAG_LOCK_INIT => {
            let addr = read_varint(r)?;
            let name = Sym(read_varint(r)? as u32);
            let mut fl = [0u8; 1];
            r.read_exact(&mut fl)?;
            let flavor = flavor_from_tag(fl[0])?;
            let is_static = read_bool(r)?;
            Event::LockInit {
                addr,
                name,
                flavor,
                is_static,
            }
        }
        TAG_ALLOC => {
            let id = AllocId(read_varint(r)?);
            let addr = read_varint(r)?;
            let size = read_varint(r)? as u32;
            let data_type = DataTypeId(read_varint(r)? as u32);
            let subclass = if read_bool(r)? {
                Some(Sym(read_varint(r)? as u32))
            } else {
                None
            };
            Event::Alloc {
                id,
                addr,
                size,
                data_type,
                subclass,
            }
        }
        TAG_FREE => Event::Free {
            id: AllocId(read_varint(r)?),
        },
        TAG_ACQUIRE => {
            let addr = read_varint(r)?;
            let mode = if read_bool(r)? {
                AcquireMode::Exclusive
            } else {
                AcquireMode::Shared
            };
            let loc = read_loc(r)?;
            Event::LockAcquire { addr, mode, loc }
        }
        TAG_RELEASE => {
            let addr = read_varint(r)?;
            let loc = read_loc(r)?;
            Event::LockRelease { addr, loc }
        }
        TAG_ACCESS => {
            let kind = if read_bool(r)? {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let addr = read_varint(r)?;
            let mut sz = [0u8; 1];
            r.read_exact(&mut sz)?;
            let loc = read_loc(r)?;
            let atomic = read_bool(r)?;
            Event::MemAccess {
                kind,
                addr,
                size: sz[0],
                loc,
                atomic,
            }
        }
        TAG_FN_ENTER => Event::FnEnter {
            func: FnId(read_varint(r)? as u32),
        },
        TAG_FN_EXIT => Event::FnExit {
            func: FnId(read_varint(r)? as u32),
        },
        TAG_TASK_SWITCH => Event::TaskSwitch {
            task: TaskId(read_varint(r)? as u32),
        },
        TAG_CTX_ENTER => {
            let mut k = [0u8; 1];
            r.read_exact(&mut k)?;
            Event::ContextEnter {
                kind: ctx_from_tag(k[0])?,
            }
        }
        TAG_CTX_EXIT => {
            let mut k = [0u8; 1];
            r.read_exact(&mut k)?;
            Event::ContextExit {
                kind: ctx_from_tag(k[0])?,
            }
        }
        other => return Err(CodecError::BadTag(other)),
    })
}

/// Serializes a trace to the binary `LDOC1` container.
///
/// # Examples
///
/// ```
/// use lockdoc_trace::codec::{write_trace, read_trace};
/// use lockdoc_trace::event::Trace;
///
/// let trace = Trace::new();
/// let mut buf = Vec::new();
/// write_trace(&trace, &mut buf).unwrap();
/// let back = read_trace(&mut buf.as_slice()).unwrap();
/// assert_eq!(trace, back);
/// ```
pub fn write_trace<W: Write>(trace: &Trace, w: &mut W) -> Result<()> {
    w.write_all(MAGIC)?;
    write_meta(w, &trace.meta)?;
    write_varint(w, trace.events.len() as u64)?;
    let mut last_ts = 0u64;
    for (i, te) in trace.events.iter().enumerate() {
        // Delta-encode timestamps. Traces built through `Trace::push` are
        // monotonic, but traces can also arrive via JSON or be assembled
        // by hand — time travel must fail typed, not overflow the delta.
        let delta = te.ts.checked_sub(last_ts).ok_or(CodecError::NonMonotonic {
            event_index: i,
            ts: te.ts,
            prev_ts: last_ts,
        })?;
        write_varint(w, delta)?;
        last_ts = te.ts;
        write_event(w, &te.event)?;
    }
    Ok(())
}

/// Streaming `LDOC1` reader: decodes the header eagerly and then yields
/// events one at a time, holding at most one chunk of input in memory.
///
/// This is the decode half of the streaming import pipeline — consumers
/// (the importer's serial pre-pass, [`read_trace`]) overlap their own work
/// with decode instead of waiting for a full `Vec<TraceEvent>`. The
/// chunked path is byte-equivalent to decoding from a whole in-memory
/// slice at any chunk size.
///
/// The reader may pull bytes from the source past the end of the
/// container (it refills in whole chunks); don't interleave other reads
/// on the same source.
pub struct TraceReader<R: Read> {
    d: ChunkedDecoder<R>,
    meta: std::sync::Arc<TraceMeta>,
    expected: usize,
    read: usize,
    ts: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a container and decodes its header (magic + metadata tables +
    /// event count). Fails with the same errors [`read_trace`] would.
    pub fn new(src: R) -> Result<Self> {
        Self::with_chunk_size(src, DEFAULT_CHUNK)
    }

    /// As [`TraceReader::new`] with an explicit refill granularity
    /// (clamped to at least 1; mainly for boundary-straddling tests).
    pub fn with_chunk_size(src: R, chunk: usize) -> Result<Self> {
        let mut d = ChunkedDecoder::new(src, chunk);
        d.decode(read_magic)?;
        let meta = read_meta(&mut d)?;
        let expected = d.decode(|r| read_count(r))?;
        Ok(Self {
            d,
            meta: std::sync::Arc::new(meta),
            expected,
            read: 0,
            ts: 0,
        })
    }

    /// The decoded metadata tables (shared, not copied).
    pub fn meta(&self) -> &std::sync::Arc<TraceMeta> {
        &self.meta
    }

    /// Event count announced by the container header.
    pub fn expected_events(&self) -> usize {
        self.expected
    }

    /// Decodes the next event, or `None` once the announced count is
    /// reached. After an error the reader is fused and yields `None`.
    #[allow(clippy::should_implement_trait)]
    pub fn next_event(&mut self) -> Option<Result<TraceEvent>> {
        if self.read == self.expected {
            return None;
        }
        match self.d.decode(read_record) {
            Ok((delta, event)) => {
                self.read += 1;
                // Saturate rather than wrap: an adversarial delta must not
                // trip the debug overflow check, and a saturated stream
                // stays monotone.
                self.ts = self.ts.saturating_add(delta);
                self.d.maybe_compact();
                Some(Ok(TraceEvent { ts: self.ts, event }))
            }
            Err(e) => {
                self.read = self.expected;
                Some(Err(e))
            }
        }
    }
}

/// Deserializes a trace from the binary `LDOC1` container.
///
/// Decodes through the chunked [`TraceReader`], so arbitrarily large
/// containers never buffer more than one chunk of undecoded input (the
/// decoded events still materialize in memory; use [`TraceReader`]
/// directly to avoid even that).
pub fn read_trace<R: Read>(r: &mut R) -> Result<Trace> {
    let mut reader = TraceReader::new(r)?;
    // Pre-allocate conservatively; a corrupted count must not OOM us.
    let mut events = Vec::with_capacity(reader.expected_events().min(1 << 16));
    while let Some(ev) = reader.next_event() {
        events.push(ev?);
    }
    Ok(Trace {
        meta: std::sync::Arc::clone(reader.meta()),
        events,
    })
}

/// One decode failure encountered by [`read_trace_salvage`].
#[derive(Debug, Clone, PartialEq)]
pub struct SalvageDiag {
    /// Index the failed record would have had in the recovered stream.
    pub event_index: u64,
    /// Byte offset (from the start of the container) where decoding failed.
    pub offset: u64,
    /// The decode error, rendered.
    pub error: String,
    /// Byte offset where a full record decoded again, or `None` when the
    /// rest of the input held no further decodable record.
    pub resumed_at: Option<u64>,
}

/// Structured diagnostics produced alongside the partial trace by
/// [`read_trace_salvage`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SalvageReport {
    /// Event count announced by the container header.
    pub expected_events: u64,
    /// Events actually recovered.
    pub recovered_events: u64,
    /// Bytes skipped while hunting for the next decodable record.
    pub bytes_skipped: u64,
    /// Bytes left over after the announced event count was satisfied.
    pub trailing_bytes: u64,
    /// The input ended before the announced event count was reached.
    pub truncated: bool,
    /// Total number of decode failures (exact even when `diags` is capped).
    pub failures: u64,
    /// Per-failure diagnostics, capped at [`MAX_SALVAGE_DIAGS`] entries.
    pub diags: Vec<SalvageDiag>,
}

impl SalvageReport {
    /// True when the stream decoded with no anomalies at all — the
    /// recovered trace is then bit-for-bit what [`read_trace`] returns.
    pub fn is_clean(&self) -> bool {
        self.failures == 0 && !self.truncated && self.trailing_bytes == 0
    }
}

/// Cap on stored [`SalvageReport::diags`] entries; the `failures` counter
/// keeps counting past the cap.
pub const MAX_SALVAGE_DIAGS: usize = 64;

/// Reads one event record (delta varint + tagged event payload).
fn read_record(r: &mut &[u8]) -> Result<(u64, Event)> {
    let delta = read_varint(r)?;
    let event = read_event(r)?;
    Ok((delta, event))
}

/// Best-effort decoder for damaged `LDOC1` containers.
///
/// The header (magic, metadata tables, event count) is all-or-nothing: the
/// metadata is the symbol table every event refers to, so a trace whose
/// header does not decode is unreadable and this returns the same error
/// [`read_trace`] would. The event stream, however, is salvaged record by
/// record: on a decode failure the reader scans forward byte by byte until
/// a whole record decodes again, notes what it skipped in the
/// [`SalvageReport`], and keeps going. On a clean input the recovered
/// trace is exactly the [`read_trace`] result and
/// [`SalvageReport::is_clean`] holds — salvage never perturbs good data.
pub fn read_trace_salvage(bytes: &[u8]) -> Result<(Trace, SalvageReport)> {
    read_trace_salvage_chunked(bytes, DEFAULT_CHUNK)
}

/// Scans forward from one past the decoder's position for the first
/// offset where a whole record decodes, pulling more input as needed.
/// Mirrors the whole-slice resync scan exactly: a probe that runs off the
/// *true* end of input counts as a failed offset, one that merely runs
/// off the buffered bytes is retried with more data.
fn probe_resync<R: Read>(d: &mut ChunkedDecoder<R>) -> Result<Option<u64>> {
    let mut off = d.pos + 1;
    loop {
        while off < d.buf.len() {
            match read_record(&mut &d.buf[off..]) {
                Ok(_) => return Ok(Some(d.base + off as u64)),
                Err(e) if !d.eof && is_buffer_eof(&e) => break,
                Err(_) => off += 1,
            }
        }
        if d.eof {
            return Ok(None);
        }
        d.fill()?;
    }
}

/// [`read_trace_salvage`] over any [`Read`] source with an explicit chunk
/// size. The recovered trace, report, diagnostics, and byte offsets are
/// identical at every chunk size — the corruption differential suite runs
/// against this path through the slice wrapper.
pub fn read_trace_salvage_chunked<R: Read>(src: R, chunk: usize) -> Result<(Trace, SalvageReport)> {
    let mut d = ChunkedDecoder::new(src, chunk);
    d.decode(read_magic)?;
    let meta = read_meta(&mut d)?;
    let n = d.decode(|r| read_count(r))?;
    let mut report = SalvageReport {
        expected_events: n as u64,
        ..SalvageReport::default()
    };
    let mut events: Vec<TraceEvent> = Vec::with_capacity(n.min(1 << 16));
    let mut ts = 0u64;
    while events.len() < n {
        if !d.has_data()? {
            report.truncated = true;
            break;
        }
        let start = d.offset();
        match d.decode(read_record) {
            Ok((delta, event)) => {
                ts = ts.saturating_add(delta);
                events.push(TraceEvent { ts, event });
                d.maybe_compact();
            }
            Err(e) => {
                report.failures += 1;
                // Resync: the first later offset where a complete record
                // decodes is our best guess for the next record boundary.
                let resumed_at = probe_resync(&mut d)?;
                if report.diags.len() < MAX_SALVAGE_DIAGS {
                    report.diags.push(SalvageDiag {
                        event_index: events.len() as u64,
                        offset: start,
                        error: e.to_string(),
                        resumed_at,
                    });
                }
                match resumed_at {
                    Some(off) => {
                        report.bytes_skipped += off - start;
                        d.pos = (off - d.base) as usize;
                    }
                    None => {
                        // The probe drained the source; everything from the
                        // failure point on was skipped.
                        report.bytes_skipped += d.count_remaining()?;
                        report.truncated = true;
                        d.pos = d.buf.len();
                        break;
                    }
                }
            }
        }
    }
    report.recovered_events = events.len() as u64;
    report.trailing_bytes = d.count_remaining()?;
    Ok((
        Trace {
            meta: std::sync::Arc::new(meta),
            events,
        },
        report,
    ))
}

/// Escapes one CSV field per RFC 4180: fields containing a comma, a
/// double quote, or a line break are wrapped in double quotes with inner
/// quotes doubled. Everything else passes through unchanged, so numeric
/// columns stay byte-identical.
pub fn csv_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    write_csv_field(&mut out, s);
    out
}

/// Appends one CSV field to `out` with the same escaping as [`csv_field`],
/// without allocating an intermediate `String`. Bulk exporters building
/// large tables should prefer this over `csv_field` in a `format!`.
pub fn write_csv_field(out: &mut String, s: &str) {
    if s.contains(['"', ',', '\n', '\r']) {
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Parses RFC-4180 CSV text into rows of unescaped fields. Quoted fields
/// may contain commas, doubled quotes, and line breaks; `\r\n` and `\n`
/// both terminate records. The final record needs no trailing newline.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    // A record boundary only exists after at least one field character,
    // separator, or quote — so a trailing newline adds no empty record.
    let mut pending = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(CodecError::BadCsv("quote inside unquoted field".to_owned()));
                }
                pending = true;
                loop {
                    match chars.next() {
                        None => {
                            return Err(CodecError::BadCsv("unterminated quoted field".to_owned()))
                        }
                        Some('"') => match chars.peek() {
                            Some('"') => {
                                chars.next();
                                field.push('"');
                            }
                            _ => break,
                        },
                        Some(inner) => field.push(inner),
                    }
                }
                match chars.peek() {
                    None | Some(',') | Some('\n') | Some('\r') => {}
                    Some(_) => {
                        return Err(CodecError::BadCsv("data after closing quote".to_owned()))
                    }
                }
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                pending = true;
            }
            '\n' | '\r' => {
                if c == '\r' && chars.peek() == Some(&'\n') {
                    chars.next();
                }
                if pending || !field.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                pending = false;
            }
            other => {
                field.push(other);
                pending = true;
            }
        }
    }
    if pending || !field.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Dumps the event stream as CSV (one row per event), resembling the CSV
/// tables the paper feeds into MariaDB. String-valued columns are escaped
/// per RFC 4180 ([`csv_field`]), so lock names, type names, and file
/// paths containing commas, quotes, or newlines survive a round trip
/// through [`parse_csv`].
///
/// Returns [`CodecError::DanglingId`] when an event references a string,
/// type, function, or task the trace's metadata tables do not contain —
/// decoded traces are untrusted input and must not panic the exporter.
pub fn to_csv(trace: &Trace) -> Result<String> {
    let mut out = String::new();
    out.push_str("ts,kind,addr,detail,loc\n");
    let resolve = |s: Sym| -> Result<String> {
        trace
            .meta
            .strings
            .try_resolve(s)
            .map(str::to_owned)
            .ok_or_else(|| CodecError::DanglingId(format!("string #{}", s.0)))
    };
    for te in &trace.events {
        let (kind, addr, detail, loc) = match &te.event {
            Event::LockInit {
                addr,
                name,
                flavor,
                is_static,
            } => (
                "lock_init",
                *addr,
                format!("{}:{}:{}", resolve(*name)?, flavor, is_static),
                String::new(),
            ),
            Event::Alloc {
                id,
                addr,
                size,
                data_type,
                subclass,
            } => (
                "alloc",
                *addr,
                format!(
                    "{}:{}:{}:{}",
                    id.0,
                    size,
                    trace
                        .meta
                        .data_types
                        .get(data_type.index())
                        .map(|d| d.name.as_str())
                        .ok_or_else(|| {
                            CodecError::DanglingId(format!("data type #{}", data_type.0))
                        })?,
                    subclass.map(resolve).transpose()?.unwrap_or_default()
                ),
                String::new(),
            ),
            Event::Free { id } => ("free", 0, format!("{}", id.0), String::new()),
            Event::LockAcquire { addr, mode, loc } => (
                "acquire",
                *addr,
                format!("{mode:?}"),
                format!("{}:{}", resolve(loc.file)?, loc.line),
            ),
            Event::LockRelease { addr, loc } => (
                "release",
                *addr,
                String::new(),
                format!("{}:{}", resolve(loc.file)?, loc.line),
            ),
            Event::MemAccess {
                kind,
                addr,
                size,
                loc,
                atomic,
            } => (
                "access",
                *addr,
                format!("{}:{}:{}", kind.tag(), size, atomic),
                format!("{}:{}", resolve(loc.file)?, loc.line),
            ),
            Event::FnEnter { func } => (
                "fn_enter",
                0,
                trace
                    .meta
                    .functions
                    .get(func.index())
                    .cloned()
                    .ok_or_else(|| CodecError::DanglingId(format!("function #{}", func.0)))?,
                String::new(),
            ),
            Event::FnExit { func } => (
                "fn_exit",
                0,
                trace
                    .meta
                    .functions
                    .get(func.index())
                    .cloned()
                    .ok_or_else(|| CodecError::DanglingId(format!("function #{}", func.0)))?,
                String::new(),
            ),
            Event::TaskSwitch { task } => (
                "task_switch",
                0,
                trace
                    .meta
                    .tasks
                    .get(task.index())
                    .cloned()
                    .ok_or_else(|| CodecError::DanglingId(format!("task #{}", task.0)))?,
                String::new(),
            ),
            Event::ContextEnter { kind } => ("ctx_enter", 0, kind.to_string(), String::new()),
            Event::ContextExit { kind } => ("ctx_exit", 0, kind.to_string(), String::new()),
        };
        out.push_str(&format!(
            "{},{},{:#x},{},{}\n",
            te.ts,
            kind,
            addr,
            csv_field(&detail),
            csv_field(&loc)
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DataTypeDef, MemberDef};

    fn sample_trace() -> Trace {
        let mut tr = Trace::new();
        let file = tr.meta_mut().strings.intern("fs/inode.c");
        let name = tr.meta_mut().strings.intern("i_lock");
        let sub = tr.meta_mut().strings.intern("ext4");
        let dt = tr.meta_mut().add_data_type(DataTypeDef {
            name: "inode".into(),
            size: 64,
            members: vec![MemberDef {
                name: "i_state".into(),
                offset: 0,
                size: 8,
                atomic: false,
                is_lock: false,
            }],
        });
        let f = tr.meta_mut().add_function("iget_locked");
        let t = tr.meta_mut().add_task("fsstress");
        tr.push(
            0,
            Event::LockInit {
                addr: 0x2000,
                name,
                flavor: LockFlavor::Spinlock,
                is_static: false,
            },
        );
        tr.push(
            1,
            Event::Alloc {
                id: AllocId(7),
                addr: 0x1000,
                size: 64,
                data_type: dt,
                subclass: Some(sub),
            },
        );
        tr.push(2, Event::TaskSwitch { task: t });
        tr.push(3, Event::FnEnter { func: f });
        tr.push(
            4,
            Event::LockAcquire {
                addr: 0x2000,
                mode: AcquireMode::Exclusive,
                loc: SourceLoc::new(file, 42),
            },
        );
        tr.push(
            5,
            Event::MemAccess {
                kind: AccessKind::Write,
                addr: 0x1004,
                size: 4,
                loc: SourceLoc::new(file, 43),
                atomic: false,
            },
        );
        tr.push(
            6,
            Event::LockRelease {
                addr: 0x2000,
                loc: SourceLoc::new(file, 44),
            },
        );
        tr.push(7, Event::FnExit { func: f });
        tr.push(
            8,
            Event::ContextEnter {
                kind: ContextKind::Hardirq,
            },
        );
        tr.push(
            9,
            Event::ContextExit {
                kind: ContextKind::Hardirq,
            },
        );
        tr.push(10, Event::Free { id: AllocId(7) });
        tr
    }

    #[test]
    fn binary_round_trip() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        write_trace(&tr, &mut buf).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(tr, back);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&mut &b"NOPE!"[..]).unwrap_err();
        assert!(matches!(err, CodecError::BadMagic));
    }

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_is_an_io_error() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        write_trace(&tr, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));
    }

    #[test]
    fn csv_dump_contains_all_rows() {
        let tr = sample_trace();
        let csv = to_csv(&tr).unwrap();
        // Header plus one row per event.
        assert_eq!(csv.lines().count(), 1 + tr.len());
        assert!(csv.contains("acquire"));
        assert!(csv.contains("i_lock"));
        assert!(csv.contains("ext4"));
        // And the parsed form has exactly 5 fields per record.
        let rows = parse_csv(&csv).unwrap();
        assert_eq!(rows.len(), 1 + tr.len());
        assert!(rows.iter().all(|r| r.len() == 5));
    }

    #[test]
    fn csv_field_escapes_rfc4180() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_field(""), "");
    }

    #[test]
    fn parse_csv_handles_quotes_commas_newlines() {
        let rows = parse_csv("a,\"b,c\",\"d\"\"e\",\"f\ng\"\nh,,\n").unwrap();
        assert_eq!(
            rows,
            vec![
                vec!["a".to_owned(), "b,c".into(), "d\"e".into(), "f\ng".into()],
                vec!["h".to_owned(), String::new(), String::new()],
            ]
        );
        // CRLF record separators and a missing trailing newline.
        let rows = parse_csv("a,b\r\nc,d").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["c".to_owned(), "d".into()]);
        // Malformed inputs are rejected, not mangled.
        assert!(matches!(
            parse_csv("ab\"c,d").unwrap_err(),
            CodecError::BadCsv(_)
        ));
        assert!(matches!(
            parse_csv("\"unterminated").unwrap_err(),
            CodecError::BadCsv(_)
        ));
        assert!(matches!(
            parse_csv("\"ab\"c").unwrap_err(),
            CodecError::BadCsv(_)
        ));
    }

    /// Any list of arbitrary strings — commas, quotes, newlines and all —
    /// must survive escape → join → parse unchanged.
    #[test]
    fn prop_csv_fields_round_trip() {
        use lockdoc_platform::prop::{check_with, vec_of, Config};
        use lockdoc_platform::rng::Rng;
        let nasty = |r: &mut Rng| -> String {
            vec_of(r, 0..12, |r| match r.gen_range(0u64..6) {
                0 => ',',
                1 => '"',
                2 => '\n',
                3 => '\r',
                _ => r.gen_range(0x20u8..0x7f) as char,
            })
            .into_iter()
            .collect()
        };
        let cfg = Config {
            cases: 200,
            ..Config::default()
        };
        check_with(
            &cfg,
            "prop_csv_fields_round_trip",
            |r| vec_of(r, 1..8, nasty),
            |fields: &Vec<String>| {
                let line: String = fields
                    .iter()
                    .map(|f| csv_field(f))
                    .collect::<Vec<_>>()
                    .join(",");
                let rows = parse_csv(&line).map_err(|e| e.to_string())?;
                // A record of all-empty fields vanishes only when the line
                // itself is empty; otherwise exactly one record comes back.
                if line.is_empty() {
                    lockdoc_platform::prop_assert!(
                        rows.is_empty() || rows == vec![vec![String::new()]]
                    );
                    return Ok(());
                }
                lockdoc_platform::prop_assert_eq!(rows.len(), 1, "one record expected");
                lockdoc_platform::prop_assert_eq!(&rows[0], fields);
                Ok(())
            },
        );
    }

    /// A trace whose meta strings are adversarial (commas, quotes,
    /// newlines in lock names, file paths, function, task, and subclass
    /// names) must produce CSV that parses back into one 5-field record
    /// per event with the exact original strings inside.
    #[test]
    fn prop_csv_trace_round_trips_nasty_meta() {
        use lockdoc_platform::prop::{check_with, Config};
        use lockdoc_platform::rng::Rng;
        let nasty_name = |r: &mut Rng, tag: &str| -> String {
            let mut s = String::from(tag);
            for _ in 0..r.gen_range(1usize..6) {
                s.push(match r.gen_range(0u64..5) {
                    0 => ',',
                    1 => '"',
                    2 => '\n',
                    _ => r.gen_range(b'a'..b'{') as char,
                });
            }
            s
        };
        let cfg = Config {
            cases: 40,
            ..Config::default()
        };
        check_with(
            &cfg,
            "prop_csv_trace_round_trips_nasty_meta",
            |r| {
                (
                    nasty_name(r, "lock:"),
                    nasty_name(r, "file:"),
                    nasty_name(r, "task:"),
                )
            },
            |(lock_name, file_name, task_name): &(String, String, String)| {
                let mut tr = Trace::new();
                let name = tr.meta_mut().strings.intern(lock_name);
                let file = tr.meta_mut().strings.intern(file_name);
                let task = tr.meta_mut().add_task(task_name);
                tr.push(
                    0,
                    Event::LockInit {
                        addr: 0x2000,
                        name,
                        flavor: LockFlavor::Spinlock,
                        is_static: true,
                    },
                );
                tr.push(1, Event::TaskSwitch { task });
                tr.push(
                    2,
                    Event::LockAcquire {
                        addr: 0x2000,
                        mode: AcquireMode::Exclusive,
                        loc: SourceLoc::new(file, 7),
                    },
                );
                let csv = to_csv(&tr).map_err(|e| e.to_string())?;
                let rows = parse_csv(&csv).map_err(|e| e.to_string())?;
                lockdoc_platform::prop_assert_eq!(rows.len(), 1 + tr.len());
                lockdoc_platform::prop_assert!(
                    rows.iter().all(|row| row.len() == 5),
                    "every record has 5 fields: {rows:?}"
                );
                let init_detail = format!("{lock_name}:spinlock_t:true");
                let acquire_loc = format!("{file_name}:7");
                lockdoc_platform::prop_assert_eq!(rows[1][3].as_str(), init_detail.as_str());
                lockdoc_platform::prop_assert_eq!(rows[2][3].as_str(), task_name.as_str());
                lockdoc_platform::prop_assert_eq!(rows[3][4].as_str(), acquire_loc.as_str());
                Ok(())
            },
        );
    }

    /// A string length prefix claiming far more bytes than the input holds
    /// must fail with a bounded-allocation EOF error, never an OOM. This
    /// pins the `read_str` grow-as-bytes-arrive guard.
    #[test]
    fn huge_string_length_prefix_fails_without_alloc() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        // Meta: one string whose length prefix claims ~2^48 bytes.
        write_varint(&mut buf, 1).unwrap();
        write_varint(&mut buf, 1 << 48).unwrap();
        buf.extend_from_slice(b"tiny");
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)), "got {err}");
    }

    /// An event-count header claiming billions of events must fail on the
    /// missing records, never pre-allocate the claimed capacity. This pins
    /// the `read_trace` capped `with_capacity` guard.
    #[test]
    fn huge_event_count_fails_without_alloc() {
        let mut buf = Vec::new();
        write_trace(&Trace::new(), &mut buf).unwrap();
        // Replace the trailing zero event count with an enormous one.
        assert_eq!(buf.pop(), Some(0));
        write_varint(&mut buf, u64::MAX).unwrap();
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)), "got {err}");
    }

    /// An 11-byte varint (more than 64 bits of payload) is an overflow,
    /// not a wrap-around.
    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0xffu8; 11];
        let err = read_varint(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::VarintOverflow));
    }

    /// Adversarial timestamp deltas that sum past `u64::MAX` saturate
    /// instead of tripping the debug overflow check.
    #[test]
    fn adversarial_ts_deltas_saturate() {
        let mut buf = Vec::new();
        write_trace(&Trace::new(), &mut buf).unwrap();
        assert_eq!(buf.pop(), Some(0));
        write_varint(&mut buf, 2).unwrap();
        write_varint(&mut buf, u64::MAX).unwrap();
        buf.push(TAG_FREE);
        write_varint(&mut buf, 1).unwrap();
        write_varint(&mut buf, u64::MAX).unwrap();
        buf.push(TAG_FREE);
        write_varint(&mut buf, 2).unwrap();
        let tr = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(tr.events.len(), 2);
        assert_eq!(tr.events[0].ts, u64::MAX);
        assert_eq!(tr.events[1].ts, u64::MAX);
    }

    /// Encoding a hand-assembled trace with a timestamp regression fails
    /// typed; the delta codec cannot represent it.
    #[test]
    fn write_trace_rejects_time_travel() {
        let tr = Trace {
            meta: std::sync::Arc::new(TraceMeta::default()),
            events: vec![
                TraceEvent {
                    ts: 5,
                    event: Event::Free { id: AllocId(1) },
                },
                TraceEvent {
                    ts: 4,
                    event: Event::Free { id: AllocId(2) },
                },
            ],
        };
        let err = write_trace(&tr, &mut Vec::new()).unwrap_err();
        assert!(matches!(
            err,
            CodecError::NonMonotonic {
                event_index: 1,
                ts: 4,
                prev_ts: 5
            }
        ));
    }

    /// Dangling metadata ids in a decoded trace surface as typed errors
    /// from the CSV exporter instead of index panics.
    #[test]
    fn to_csv_reports_dangling_ids() {
        let tr = Trace {
            meta: std::sync::Arc::new(TraceMeta::default()),
            events: vec![TraceEvent {
                ts: 0,
                event: Event::TaskSwitch { task: TaskId(9) },
            }],
        };
        let err = to_csv(&tr).unwrap_err();
        assert!(matches!(err, CodecError::DanglingId(_)), "got {err}");
        assert!(err.to_string().contains("task #9"));
    }

    /// More `parse_csv` edge cases pinned: lone CR record separators,
    /// quoted CRLF payloads, and empty-field-only records.
    #[test]
    fn parse_csv_edge_cases() {
        // Lone '\r' terminates a record just like '\n'.
        let rows = parse_csv("a,b\rc,d").unwrap();
        assert_eq!(rows.len(), 2);
        // A quoted field may contain CRLF verbatim.
        let rows = parse_csv("\"a\r\nb\",c").unwrap();
        assert_eq!(rows, vec![vec!["a\r\nb".to_owned(), "c".into()]]);
        // Records of empty fields survive.
        let rows = parse_csv(",,\n").unwrap();
        assert_eq!(
            rows,
            vec![vec![String::new(), String::new(), String::new()]]
        );
        // An empty quoted field followed by EOF.
        let rows = parse_csv("\"\"").unwrap();
        assert_eq!(rows, vec![vec![String::new()]]);
        // A quote opening mid-field is rejected even at the very end.
        assert!(parse_csv("x\"").is_err());
    }

    /// Salvage on a clean container recovers the identical trace with a
    /// clean report — byte-identity for good data.
    #[test]
    fn salvage_is_identity_on_clean_input() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        write_trace(&tr, &mut buf).unwrap();
        let (back, report) = read_trace_salvage(&buf).unwrap();
        assert_eq!(back, tr);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.recovered_events, tr.len() as u64);
        // Re-encoding the salvaged trace reproduces the original bytes.
        let mut again = Vec::new();
        write_trace(&back, &mut again).unwrap();
        assert_eq!(again, buf);
    }

    /// A bad tag mid-stream is skipped with a diagnostic and decoding
    /// resumes at the next decodable record.
    #[test]
    fn salvage_resyncs_past_a_smashed_record() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        write_trace(&tr, &mut buf).unwrap();
        // Find the byte offset of each record so we can smash one exactly.
        let mut clean = Vec::new();
        clean.extend_from_slice(MAGIC);
        write_meta(&mut clean, &tr.meta).unwrap();
        write_varint(&mut clean, tr.events.len() as u64).unwrap();
        let smash_at = clean.len() + 1; // tag byte of record 0 (delta is 1 byte)
        buf[smash_at] = 0xff; // not a valid event tag
        let (back, report) = read_trace_salvage(&buf).unwrap();
        assert!(!report.is_clean());
        assert!(report.failures >= 1);
        assert_eq!(report.diags[0].event_index, 0);
        assert_eq!(report.diags[0].offset, smash_at as u64 - 1);
        assert!(report.diags[0].error.contains("0xff"));
        assert!(report.diags[0].resumed_at.is_some());
        assert!(report.bytes_skipped >= 1);
        // Later records were recovered.
        assert!(!back.events.is_empty());
        assert!(back.events.len() < tr.events.len() + 1);
    }

    /// Truncation mid-record keeps the intact prefix and reports the cut.
    #[test]
    fn salvage_recovers_prefix_of_truncated_trace() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        write_trace(&tr, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let (back, report) = read_trace_salvage(&buf).unwrap();
        assert!(report.truncated);
        assert!(!report.is_clean());
        assert_eq!(back.events.len(), tr.events.len() - 1);
        assert_eq!(back.events[..], tr.events[..tr.events.len() - 1]);
    }

    /// `read_count` rejects counts wider than `usize` instead of
    /// truncating them; on 64-bit targets `usize` == `u64` so overflow is
    /// unreachable and this pins the in-range path plus the error's
    /// rendering.
    #[test]
    fn count_overflow_is_typed() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 12345).unwrap();
        assert_eq!(read_count(&mut buf.as_slice()).unwrap(), 12345);
        assert_eq!(
            CodecError::CountOverflow.to_string(),
            "count does not fit in usize on this target"
        );
    }

    /// On 32-bit targets a count above `u32::MAX` must fail typed, not
    /// wrap (the pre-fix `as usize` silently truncated it).
    #[cfg(target_pointer_width = "32")]
    #[test]
    fn count_overflow_fires_on_32_bit() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::from(u32::MAX) + 1).unwrap();
        assert!(matches!(
            read_count(&mut buf.as_slice()).unwrap_err(),
            CodecError::CountOverflow
        ));
    }

    /// Chunked decode is byte-equivalent to whole-slice decode at every
    /// chunk size, including chunk=1 where every record straddles a
    /// refill boundary.
    #[test]
    fn chunked_read_matches_slice_read_at_any_chunk_size() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        write_trace(&tr, &mut buf).unwrap();
        for chunk in [1usize, 2, 3, 7, 64, buf.len(), buf.len() * 2] {
            let mut reader = TraceReader::with_chunk_size(buf.as_slice(), chunk).unwrap();
            assert_eq!(reader.expected_events(), tr.len());
            let mut events = Vec::new();
            while let Some(ev) = reader.next_event() {
                events.push(ev.unwrap());
            }
            assert_eq!(events, tr.events, "chunk={chunk}");
            assert_eq!(**reader.meta(), *tr.meta, "chunk={chunk}");
        }
    }

    /// Salvage across a smashed record is identical when the resync scan
    /// has to straddle refill boundaries: every chunk size yields the
    /// same trace, the same diagnostics, and the same byte offsets as the
    /// whole-slice path.
    #[test]
    fn salvage_resync_is_identical_across_chunk_boundaries() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        write_trace(&tr, &mut buf).unwrap();
        let mut clean = Vec::new();
        clean.extend_from_slice(MAGIC);
        write_meta(&mut clean, &tr.meta).unwrap();
        write_varint(&mut clean, tr.events.len() as u64).unwrap();
        let smash_at = clean.len() + 1; // tag byte of record 0
        buf[smash_at] = 0xff;
        let (want_tr, want_report) = read_trace_salvage(&buf).unwrap();
        assert!(!want_report.is_clean());
        for chunk in [1usize, 2, 3, smash_at, buf.len()] {
            let (got_tr, got_report) = read_trace_salvage_chunked(buf.as_slice(), chunk).unwrap();
            assert_eq!(got_tr, want_tr, "chunk={chunk}");
            assert_eq!(got_report, want_report, "chunk={chunk}");
        }
    }

    /// A header that does not decode is fatal for salvage too: metadata is
    /// the symbol table everything else refers to.
    #[test]
    fn salvage_rejects_unreadable_header() {
        assert!(matches!(
            read_trace_salvage(b"NOPE!whatever").unwrap_err(),
            CodecError::BadMagic
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        write_varint(&mut buf, 3).unwrap(); // claims 3 strings, has none
        assert!(read_trace_salvage(&buf).is_err());
    }
}
