//! Trace layer of the LockDoc reproduction.
//!
//! This crate implements phase ❶ of the LockDoc pipeline (paper Sec. 5.1):
//! the event model emitted by an instrumented target system, binary/CSV
//! codecs for archiving traces, the post-processing filters of Sec. 5.3,
//! and the relational trace store of Fig. 6 that all analyses query.
//!
//! # Examples
//!
//! ```
//! use lockdoc_trace::event::Trace;
//! use lockdoc_trace::filter::FilterConfig;
//! use lockdoc_trace::db::import;
//!
//! let trace = Trace::new();
//! let db = import(&trace, &FilterConfig::with_defaults(), 1);
//! assert!(db.accesses.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod corpus;
pub mod corrupt;
pub mod db;
pub mod event;
pub mod filter;
pub mod ids;
pub mod jsonio;
pub mod merge;

pub use corpus::{screen_trace, CorpusStore, Health, LoadedTrace, ScreenReport};
pub use db::{import, import_resilient, TraceDb};
pub use event::{Event, Trace, TraceEvent};
pub use filter::FilterConfig;
pub use merge::{concat_traces, MergeError};
