//! Post-processing filters applied during database import (paper Sec. 5.3).
//!
//! The paper filters three classes of memory accesses before rule derivation:
//!
//! 1. accesses made from object **initialization/teardown** contexts, where
//!    locking rules are deliberately violated because the object is not yet
//!    (or no longer) visible to concurrent control flows,
//! 2. accesses to **blacklisted members** (out-of-scope nested structures,
//!    `atomic_t` members, lock variables themselves), and
//! 3. accesses performed via **atomic accessors** (`atomic_read()` etc.)
//!    that intentionally bypass the locking discipline, or from globally
//!    ignored helper functions.

use std::collections::{HashMap, HashSet};

/// Declarative filter configuration.
///
/// The paper's concrete setup uses a function blacklist of 99 entries for 9
/// data types plus 58 globally ignored functions, and a member blacklist of
/// 30 entries (Sec. 6); [`crate::filter::FilterConfig`] holds the same three
/// lists in structured form.
#[derive(Debug, Clone, Default)]
pub struct FilterConfig {
    /// Members to drop entirely: `(data type name, member name)`.
    pub member_blacklist: HashSet<(String, String)>,
    /// Per-data-type (de)initialization functions; accesses to an instance
    /// of the type while one of these functions is on the call stack are
    /// dropped.
    pub init_teardown: HashMap<String, HashSet<String>>,
    /// Globally ignored functions (e.g. `atomic_inc`): any access whose
    /// innermost frame is one of these is dropped.
    pub global_fn_blacklist: HashSet<String>,
    /// Drop accesses flagged as atomic by the tracer (default true).
    pub drop_atomic_accesses: bool,
    /// Drop accesses to members declared `atomic_t` or lock variables
    /// (default true).
    pub drop_atomic_members: bool,
}

impl FilterConfig {
    /// A configuration with the paper's default behaviour (atomic filtering
    /// on, empty blacklists).
    pub fn with_defaults() -> Self {
        Self {
            drop_atomic_accesses: true,
            drop_atomic_members: true,
            ..Self::default()
        }
    }

    /// Adds a member blacklist entry.
    pub fn blacklist_member(&mut self, data_type: &str, member: &str) -> &mut Self {
        self.member_blacklist
            .insert((data_type.to_owned(), member.to_owned()));
        self
    }

    /// Registers an initialization/teardown function for a data type.
    pub fn add_init_teardown(&mut self, data_type: &str, func: &str) -> &mut Self {
        self.init_teardown
            .entry(data_type.to_owned())
            .or_default()
            .insert(func.to_owned());
        self
    }

    /// Registers a globally ignored function.
    pub fn ignore_function(&mut self, func: &str) -> &mut Self {
        self.global_fn_blacklist.insert(func.to_owned());
        self
    }

    /// Whether `(data_type, member)` is blacklisted.
    pub fn member_blacklisted(&self, data_type: &str, member: &str) -> bool {
        // Avoid allocating a tuple of Strings for the lookup.
        self.member_blacklist
            .iter()
            .any(|(t, m)| t == data_type && m == member)
    }

    /// Total number of configured blacklist entries (for stats reporting).
    pub fn entry_counts(&self) -> FilterCounts {
        FilterCounts {
            member_entries: self.member_blacklist.len(),
            init_teardown_entries: self.init_teardown.values().map(|s| s.len()).sum(),
            global_fn_entries: self.global_fn_blacklist.len(),
        }
    }
}

/// Sizes of the configured blacklists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterCounts {
    /// Number of `(type, member)` blacklist entries.
    pub member_entries: usize,
    /// Number of per-type init/teardown function entries.
    pub init_teardown_entries: usize,
    /// Number of globally ignored functions.
    pub global_fn_entries: usize,
}

/// Why an access was filtered out (kept for import statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterReason {
    /// The tracer flagged the access as atomic.
    AtomicAccess,
    /// The member is an `atomic_t` or a lock variable.
    AtomicOrLockMember,
    /// The `(type, member)` pair is blacklisted.
    BlacklistedMember,
    /// An init/teardown function of the type is on the stack.
    InitTeardownContext,
    /// The innermost function is globally ignored.
    IgnoredFunction,
}

impl FilterReason {
    /// Every reason, in a fixed order matching [`FilterReason::index`].
    /// Hot import loops count drops in a plain array indexed by this and
    /// only materialize the name-keyed map once at the end of the run.
    pub const ALL: [FilterReason; 5] = [
        FilterReason::AtomicAccess,
        FilterReason::AtomicOrLockMember,
        FilterReason::BlacklistedMember,
        FilterReason::InitTeardownContext,
        FilterReason::IgnoredFunction,
    ];

    /// Dense index of this reason within [`FilterReason::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_entries() {
        let mut cfg = FilterConfig::with_defaults();
        cfg.blacklist_member("inode", "i_sb_list")
            .add_init_teardown("inode", "alloc_inode")
            .add_init_teardown("inode", "destroy_inode")
            .ignore_function("atomic_inc");
        assert!(cfg.member_blacklisted("inode", "i_sb_list"));
        assert!(!cfg.member_blacklisted("inode", "i_state"));
        let counts = cfg.entry_counts();
        assert_eq!(counts.member_entries, 1);
        assert_eq!(counts.init_teardown_entries, 2);
        assert_eq!(counts.global_fn_entries, 1);
    }

    #[test]
    fn defaults_enable_atomic_filtering() {
        let cfg = FilterConfig::with_defaults();
        assert!(cfg.drop_atomic_accesses);
        assert!(cfg.drop_atomic_members);
        let off = FilterConfig::default();
        assert!(!off.drop_atomic_accesses);
    }
}
