//! JSON serialization for the trace layer, built on the derive-free
//! [`ToJson`]/[`FromJson`] traits from `lockdoc_platform`.
//!
//! The JSON form is an interchange/debugging format alongside the binary
//! `LDOC1` codec ([`crate::codec`]): human-readable, self-describing
//! (events carry a `"type"` tag), and loss-free — every id, address, and
//! timestamp round-trips exactly, including `u64` addresses beyond 2^53.
//! Field order is fixed, so serializing the same trace twice yields
//! byte-identical text.

use crate::codec::{SalvageDiag, SalvageReport};
use crate::db::resilient::{ImportReport, QuarantineClass, QuarantineEntry};
use crate::event::{
    AccessKind, AcquireMode, ContextKind, DataTypeDef, Event, LockFlavor, MemberDef, SourceLoc,
    Trace, TraceEvent, TraceMeta, TraceSummary,
};
use crate::ids::{
    AllocId, DataTypeId, FnId, Interner, LockId, MemberId, StackId, Sym, TaskId, TxnId,
};
use lockdoc_platform::json::{decode_field, field, FromJson, Json, JsonError, ToJson};

macro_rules! json_id {
    ($($ty:ident),+ $(,)?) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                self.0.to_json()
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                FromJson::from_json(v).map($ty)
            }
        }
    )+};
}

json_id!(Sym, DataTypeId, MemberId, AllocId, TaskId, FnId, StackId, LockId, TxnId);

macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::obj(vec![$((stringify!($field), self.$field.to_json())),+])
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                Ok(Self {
                    $($field: decode_field(v, stringify!($field))?),+
                })
            }
        }
    };
}

macro_rules! json_unit_enum {
    ($ty:ident { $($variant:ident => $name:literal),+ $(,)? }) => {
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                let s = match self {
                    $($ty::$variant => $name),+
                };
                Json::Str(s.to_owned())
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v.as_str() {
                    $(Some($name) => Ok($ty::$variant),)+
                    Some(other) => Err(JsonError::new(format!(
                        "unknown {} variant '{other}'",
                        stringify!($ty)
                    ))),
                    None => Err(JsonError::new(concat!(
                        "expected string for ",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

json_unit_enum!(LockFlavor {
    Spinlock => "spinlock_t",
    Rwlock => "rwlock_t",
    Mutex => "mutex",
    Semaphore => "semaphore",
    RwSemaphore => "rw_semaphore",
    Seqlock => "seqlock_t",
    Rcu => "rcu",
    Softirq => "softirq",
    Hardirq => "hardirq",
});

json_unit_enum!(AcquireMode {
    Shared => "shared",
    Exclusive => "exclusive",
});

json_unit_enum!(AccessKind {
    Read => "r",
    Write => "w",
});

json_unit_enum!(ContextKind {
    Task => "task",
    Softirq => "softirq",
    Hardirq => "hardirq",
});

json_struct!(SourceLoc { file, line });
json_struct!(MemberDef {
    name,
    offset,
    size,
    atomic,
    is_lock
});
json_struct!(DataTypeDef {
    name,
    size,
    members
});
json_struct!(TraceEvent { ts, event });
json_struct!(Trace { meta, events });
json_struct!(TraceSummary {
    total,
    allocs,
    frees,
    lock_ops,
    mem_accesses,
    lock_inits,
    other
});

// --- Robustness reports (resilient import + salvage decode) -------------

json_unit_enum!(QuarantineClass {
    TimestampRegression => "timestamp_regression",
    DanglingMeta => "dangling_meta",
    DuplicateAllocId => "duplicate_alloc_id",
    OverlappingAlloc => "overlapping_alloc",
    DanglingFree => "dangling_free",
    DoubleFree => "double_free",
    UnbalancedRelease => "unbalanced_release",
});

json_struct!(QuarantineEntry {
    event_index,
    class,
    detail
});
json_struct!(SalvageDiag {
    event_index,
    offset,
    error,
    resumed_at
});
json_struct!(SalvageReport {
    expected_events,
    recovered_events,
    bytes_skipped,
    trailing_bytes,
    truncated,
    failures,
    diags
});

impl ToJson for ImportReport {
    fn to_json(&self) -> Json {
        // `counts` is derived from `quarantined`, emitted for dashboards
        // and `lockdoc doctor` consumers that only want the histogram; the
        // decoder ignores it and rebuilds from the entries.
        let counts = Json::obj(
            self.counts()
                .into_iter()
                .map(|(class, n)| (class.name(), n.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("events".to_owned(), self.events.to_json()),
            ("bad_frac".to_owned(), self.bad_frac.to_json()),
            ("quarantined".to_owned(), self.quarantined.to_json()),
            ("counts".to_owned(), counts),
        ])
    }
}

impl FromJson for ImportReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ImportReport {
            events: decode_field(v, "events")?,
            bad_frac: decode_field(v, "bad_frac")?,
            quarantined: decode_field(v, "quarantined")?,
        })
    }
}

impl ToJson for Interner {
    fn to_json(&self) -> Json {
        // Only the string table is persisted; the lookup index is derived
        // state and rebuilds lazily on the decoded side.
        self.strings().to_json()
    }
}

impl FromJson for Interner {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Vec::<String>::from_json(v).map(Interner::from_strings)
    }
}

impl ToJson for TraceMeta {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("strings", self.strings.to_json()),
            ("data_types", self.data_types.to_json()),
            ("functions", self.functions.to_json()),
            ("tasks", self.tasks.to_json()),
        ])
    }
}

impl FromJson for TraceMeta {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            strings: decode_field(v, "strings")?,
            data_types: decode_field(v, "data_types")?,
            functions: decode_field(v, "functions")?,
            tasks: decode_field(v, "tasks")?,
        })
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let tag = |name: &str| ("type", Json::Str(name.to_owned()));
        match self {
            Event::LockInit {
                addr,
                name,
                flavor,
                is_static,
            } => Json::obj(vec![
                tag("lock_init"),
                ("addr", addr.to_json()),
                ("name", name.to_json()),
                ("flavor", flavor.to_json()),
                ("is_static", is_static.to_json()),
            ]),
            Event::Alloc {
                id,
                addr,
                size,
                data_type,
                subclass,
            } => Json::obj(vec![
                tag("alloc"),
                ("id", id.to_json()),
                ("addr", addr.to_json()),
                ("size", size.to_json()),
                ("data_type", data_type.to_json()),
                ("subclass", subclass.to_json()),
            ]),
            Event::Free { id } => Json::obj(vec![tag("free"), ("id", id.to_json())]),
            Event::LockAcquire { addr, mode, loc } => Json::obj(vec![
                tag("lock_acquire"),
                ("addr", addr.to_json()),
                ("mode", mode.to_json()),
                ("loc", loc.to_json()),
            ]),
            Event::LockRelease { addr, loc } => Json::obj(vec![
                tag("lock_release"),
                ("addr", addr.to_json()),
                ("loc", loc.to_json()),
            ]),
            Event::MemAccess {
                kind,
                addr,
                size,
                loc,
                atomic,
            } => Json::obj(vec![
                tag("mem_access"),
                ("kind", kind.to_json()),
                ("addr", addr.to_json()),
                ("size", size.to_json()),
                ("loc", loc.to_json()),
                ("atomic", atomic.to_json()),
            ]),
            Event::FnEnter { func } => Json::obj(vec![tag("fn_enter"), ("func", func.to_json())]),
            Event::FnExit { func } => Json::obj(vec![tag("fn_exit"), ("func", func.to_json())]),
            Event::TaskSwitch { task } => {
                Json::obj(vec![tag("task_switch"), ("task", task.to_json())])
            }
            Event::ContextEnter { kind } => {
                Json::obj(vec![tag("context_enter"), ("kind", kind.to_json())])
            }
            Event::ContextExit { kind } => {
                Json::obj(vec![tag("context_exit"), ("kind", kind.to_json())])
            }
        }
    }
}

impl FromJson for Event {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let tag = field(v, "type")?
            .as_str()
            .ok_or_else(|| JsonError::new("event 'type' must be a string"))?;
        match tag {
            "lock_init" => Ok(Event::LockInit {
                addr: decode_field(v, "addr")?,
                name: decode_field(v, "name")?,
                flavor: decode_field(v, "flavor")?,
                is_static: decode_field(v, "is_static")?,
            }),
            "alloc" => Ok(Event::Alloc {
                id: decode_field(v, "id")?,
                addr: decode_field(v, "addr")?,
                size: decode_field(v, "size")?,
                data_type: decode_field(v, "data_type")?,
                subclass: decode_field(v, "subclass")?,
            }),
            "free" => Ok(Event::Free {
                id: decode_field(v, "id")?,
            }),
            "lock_acquire" => Ok(Event::LockAcquire {
                addr: decode_field(v, "addr")?,
                mode: decode_field(v, "mode")?,
                loc: decode_field(v, "loc")?,
            }),
            "lock_release" => Ok(Event::LockRelease {
                addr: decode_field(v, "addr")?,
                loc: decode_field(v, "loc")?,
            }),
            "mem_access" => Ok(Event::MemAccess {
                kind: decode_field(v, "kind")?,
                addr: decode_field(v, "addr")?,
                size: decode_field(v, "size")?,
                loc: decode_field(v, "loc")?,
                atomic: decode_field(v, "atomic")?,
            }),
            "fn_enter" => Ok(Event::FnEnter {
                func: decode_field(v, "func")?,
            }),
            "fn_exit" => Ok(Event::FnExit {
                func: decode_field(v, "func")?,
            }),
            "task_switch" => Ok(Event::TaskSwitch {
                task: decode_field(v, "task")?,
            }),
            "context_enter" => Ok(Event::ContextEnter {
                kind: decode_field(v, "kind")?,
            }),
            "context_exit" => Ok(Event::ContextExit {
                kind: decode_field(v, "kind")?,
            }),
            other => Err(JsonError::new(format!("unknown event type '{other}'"))),
        }
    }
}

/// Serializes a trace to pretty JSON text.
pub fn trace_to_json(trace: &Trace) -> String {
    trace.to_json().pretty()
}

/// Parses a trace from JSON text.
pub fn trace_from_json(text: &str) -> Result<Trace, JsonError> {
    lockdoc_platform::json::from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_trace, write_trace};
    use lockdoc_platform::json::parse;

    /// A trace exercising every one of the 11 event variants.
    fn all_variant_trace() -> Trace {
        let mut t = Trace::new();
        let file = t.meta_mut().strings.intern("fs/inode.c");
        let lock_name = t.meta_mut().strings.intern("i_lock");
        let sub = t.meta_mut().strings.intern("ext4");
        let dt = t.meta_mut().add_data_type(DataTypeDef {
            name: "inode".into(),
            size: 64,
            members: vec![MemberDef {
                name: "i_state".into(),
                offset: 0,
                size: 8,
                atomic: false,
                is_lock: false,
            }],
        });
        let f = t.meta_mut().add_function("ext4_evict_inode");
        let task = t.meta_mut().add_task("kworker/0:1");
        let loc = SourceLoc::new(file, 42);
        t.push(
            0,
            Event::LockInit {
                addr: 0xffff_8800_0000_0010,
                name: lock_name,
                flavor: LockFlavor::Spinlock,
                is_static: false,
            },
        );
        t.push(
            1,
            Event::Alloc {
                id: AllocId(1),
                addr: 0xffff_8800_0000_0000,
                size: 64,
                data_type: dt,
                subclass: Some(sub),
            },
        );
        t.push(2, Event::TaskSwitch { task });
        t.push(3, Event::FnEnter { func: f });
        t.push(
            4,
            Event::LockAcquire {
                addr: 0xffff_8800_0000_0010,
                mode: AcquireMode::Exclusive,
                loc,
            },
        );
        t.push(
            5,
            Event::MemAccess {
                kind: AccessKind::Write,
                addr: 0xffff_8800_0000_0000,
                size: 8,
                loc,
                atomic: false,
            },
        );
        t.push(
            6,
            Event::LockRelease {
                addr: 0xffff_8800_0000_0010,
                loc,
            },
        );
        t.push(
            7,
            Event::ContextEnter {
                kind: ContextKind::Hardirq,
            },
        );
        t.push(
            8,
            Event::MemAccess {
                kind: AccessKind::Read,
                addr: 0xffff_8800_0000_0000,
                size: 4,
                loc,
                atomic: true,
            },
        );
        t.push(
            9,
            Event::ContextExit {
                kind: ContextKind::Hardirq,
            },
        );
        t.push(10, Event::FnExit { func: f });
        t.push(11, Event::Free { id: AllocId(1) });
        t
    }

    #[test]
    fn every_event_variant_round_trips_through_json() {
        let trace = all_variant_trace();
        for ev in &trace.events {
            let text = ev.event.to_json().compact();
            let back = Event::from_json(&parse(&text).unwrap())
                .unwrap_or_else(|e| panic!("decode {text}: {e}"));
            assert_eq!(back, ev.event, "variant did not round-trip: {text}");
        }
    }

    #[test]
    fn whole_trace_round_trips_and_matches_codec() {
        let trace = all_variant_trace();
        // JSON round trip.
        let text = trace_to_json(&trace);
        let from_json = trace_from_json(&text).unwrap();
        assert_eq!(from_json, trace);
        // Binary codec round trip of the same trace.
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let from_codec = read_trace(&mut buf.as_slice()).unwrap();
        // Both codecs must agree with each other event-for-event.
        assert_eq!(from_json.events, from_codec.events);
        assert_eq!(from_json.meta.data_types, from_codec.meta.data_types,);
    }

    #[test]
    fn json_form_is_byte_stable() {
        let trace = all_variant_trace();
        assert_eq!(trace_to_json(&trace), trace_to_json(&trace));
        let reparsed = trace_from_json(&trace_to_json(&trace)).unwrap();
        assert_eq!(trace_to_json(&reparsed), trace_to_json(&trace));
    }

    #[test]
    fn big_addresses_survive_exactly() {
        let trace = all_variant_trace();
        let back = trace_from_json(&trace_to_json(&trace)).unwrap();
        match &back.events[0].event {
            Event::LockInit { addr, .. } => assert_eq!(*addr, 0xffff_8800_0000_0010),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn malformed_event_json_is_rejected() {
        for text in [
            // Not JSON at all.
            "not json",
            // Wrong shape.
            "[]",
            "42",
            // Missing type tag.
            r#"{"addr":1}"#,
            // Unknown type tag.
            r#"{"type":"warp_drive","addr":1}"#,
            // Missing required field.
            r#"{"type":"free"}"#,
            // Field with wrong type.
            r#"{"type":"free","id":"one"}"#,
            // Out-of-range numeric field (size is u32).
            r#"{"type":"alloc","id":1,"addr":2,"size":99999999999,"data_type":0,"subclass":null}"#,
            // Bad enum string.
            r#"{"type":"mem_access","kind":"x","addr":1,"size":1,"loc":{"file":0,"line":1},"atomic":false}"#,
        ] {
            let decoded = parse(text).and_then(|v| Event::from_json(&v));
            assert!(decoded.is_err(), "accepted malformed event: {text}");
        }
    }

    #[test]
    fn malformed_trace_json_is_rejected() {
        assert!(trace_from_json("").is_err());
        assert!(trace_from_json("{}").is_err());
        assert!(trace_from_json(r#"{"meta":{},"events":[]}"#).is_err());
        // Events must be an array.
        let text =
            r#"{"meta":{"strings":[],"data_types":[],"functions":[],"tasks":[]},"events":{}}"#;
        assert!(trace_from_json(text).is_err());
        // Truncated document.
        let good = trace_to_json(&all_variant_trace());
        assert!(trace_from_json(&good[..good.len() / 2]).is_err());
    }

    #[test]
    fn summary_round_trips() {
        let s = all_variant_trace().summary();
        let text = s.to_json().compact();
        let back: TraceSummary = lockdoc_platform::json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn import_report_round_trips_and_exposes_counts() {
        let report = ImportReport {
            events: 100,
            bad_frac: 0.03,
            quarantined: vec![
                QuarantineEntry {
                    event_index: 7,
                    class: QuarantineClass::DoubleFree,
                    detail: "alloc id 1 already freed".into(),
                },
                QuarantineEntry {
                    event_index: 12,
                    class: QuarantineClass::DoubleFree,
                    detail: "alloc id 2 already freed".into(),
                },
                QuarantineEntry {
                    event_index: 20,
                    class: QuarantineClass::TimestampRegression,
                    detail: "ts 5 after high-water mark 9".into(),
                },
            ],
        };
        let text = report.to_json().compact();
        // The derived histogram is visible to JSON consumers...
        let v = parse(&text).unwrap();
        let counts = v.get("counts").expect("counts object");
        assert_eq!(counts.get("double_free").and_then(Json::as_u64), Some(2));
        assert_eq!(
            counts.get("timestamp_regression").and_then(Json::as_u64),
            Some(1)
        );
        // ...and the report itself round-trips from the real fields.
        let back: ImportReport = lockdoc_platform::json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn salvage_report_round_trips() {
        let report = SalvageReport {
            expected_events: 10,
            recovered_events: 8,
            bytes_skipped: 3,
            trailing_bytes: 0,
            truncated: true,
            failures: 2,
            diags: vec![SalvageDiag {
                event_index: 4,
                offset: 77,
                error: "unknown event tag 0xff".into(),
                resumed_at: Some(81),
            }],
        };
        let text = report.to_json().compact();
        let back: SalvageReport = lockdoc_platform::json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }
}
