//! Concatenation of independently recorded traces into one well-formed
//! trace, used by the sharded ksim workload runner: every shard records on
//! its own `Machine`, and the shards' traces are stitched together here.
//!
//! Each part keeps its events in order but gets
//! - its metadata unioned into the merged trace (strings by value, data
//!   types / functions / tasks by name),
//! - its timestamps rebased so simulated time keeps increasing across the
//!   shard boundary,
//! - its allocation ids densely renumbered so ids stay unique and strictly
//!   increasing across parts (keeping `TraceDb::allocation`'s binary
//!   search valid).
//!
//! Addresses are **not** rewritten: the caller must hand in parts with
//! disjoint address ranges (ksim derives a per-shard address base from the
//! shard index), and [`concat_traces`] rejects overlapping parts — an
//! allocation from one shard still live at its trace's end would otherwise
//! swallow or invalidate same-address allocations of later shards.

use crate::event::{DataTypeDef, Event, SourceLoc, Trace};
use crate::ids::{Addr, AllocId, DataTypeId, FnId, Sym, TaskId};
use std::collections::HashMap;

/// Sentinel for ids that were already dangling in a source part; they must
/// stay dangling in the merged trace (the importer counts them as invalid
/// events) instead of aliasing a real entry of the merged metadata.
const INVALID: u32 = u32::MAX;

/// The address range `[min, max)` touched by one part's events.
#[derive(Clone, Copy)]
struct AddrRange {
    min: Addr,
    max: Addr,
}

impl AddrRange {
    fn overlaps(&self, other: &AddrRange) -> bool {
        self.min < other.max && other.min < self.max
    }
}

fn addr_range(part: &Trace) -> Option<AddrRange> {
    let mut range: Option<AddrRange> = None;
    let mut extend = |lo: Addr, hi: Addr| {
        let r = range.get_or_insert(AddrRange { min: lo, max: hi });
        r.min = r.min.min(lo);
        r.max = r.max.max(hi);
    };
    for te in &part.events {
        match &te.event {
            Event::Alloc { addr, size, .. } => extend(*addr, addr.saturating_add(u64::from(*size))),
            Event::LockInit { addr, .. }
            | Event::LockAcquire { addr, .. }
            | Event::LockRelease { addr, .. }
            | Event::MemAccess { addr, .. } => extend(*addr, addr.saturating_add(1)),
            _ => {}
        }
    }
    range
}

/// Concatenates `parts` into one trace (see the module docs for the
/// remapping rules). Parts must occupy pairwise disjoint address ranges;
/// overlapping parts are rejected with a descriptive error.
pub fn concat_traces(parts: Vec<Trace>) -> Result<Trace, String> {
    // Reject address collisions up front: they would silently corrupt
    // allocation resolution after the merge.
    let ranges: Vec<Option<AddrRange>> = parts.iter().map(addr_range).collect();
    for i in 0..ranges.len() {
        for j in i + 1..ranges.len() {
            if let (Some(a), Some(b)) = (&ranges[i], &ranges[j]) {
                if a.overlaps(b) {
                    return Err(format!(
                        "traces {i} and {j} overlap in address space \
                         ([{:#x}, {:#x}) vs [{:#x}, {:#x})); record shards \
                         with disjoint address bases",
                        a.min, a.max, b.min, b.max
                    ));
                }
            }
        }
    }

    let mut out = Trace::new();
    let mut ts_base = 0u64;
    let mut next_alloc = 1u64;

    for part in parts {
        // --- Metadata union -------------------------------------------------
        let sym_map: Vec<Sym> = part
            .meta
            .strings
            .strings()
            .iter()
            .map(|s| out.meta.strings.intern(s))
            .collect();
        let mut dt_map: Vec<DataTypeId> = Vec::with_capacity(part.meta.data_types.len());
        for dt in &part.meta.data_types {
            match out.meta.data_type_named(&dt.name) {
                Some(existing) => {
                    let have: &DataTypeDef = &out.meta.data_types[existing.index()];
                    if have != dt {
                        return Err(format!(
                            "conflicting layouts for data type `{}` across traces",
                            dt.name
                        ));
                    }
                    dt_map.push(existing);
                }
                None => dt_map.push(out.meta.add_data_type(dt.clone())),
            }
        }
        let fn_map: Vec<FnId> = part
            .meta
            .functions
            .iter()
            .map(|name| {
                out.meta
                    .functions
                    .iter()
                    .position(|f| f == name)
                    .map(|i| FnId(i as u32))
                    .unwrap_or_else(|| out.meta.add_function(name))
            })
            .collect();
        let task_map: Vec<TaskId> = part
            .meta
            .tasks
            .iter()
            .map(|name| {
                out.meta
                    .tasks
                    .iter()
                    .position(|t| t == name)
                    .map(|i| TaskId(i as u32))
                    .unwrap_or_else(|| out.meta.add_task(name))
            })
            .collect();

        let map_sym = |s: Sym| sym_map.get(s.index()).copied().unwrap_or(Sym(INVALID));
        let map_dt = |d: DataTypeId| {
            dt_map
                .get(d.index())
                .copied()
                .unwrap_or(DataTypeId(INVALID))
        };
        let map_fn = |f: FnId| fn_map.get(f.index()).copied().unwrap_or(FnId(INVALID));
        let map_task = |t: TaskId| task_map.get(t.index()).copied().unwrap_or(TaskId(INVALID));
        let map_loc = |l: SourceLoc| SourceLoc::new(map_sym(l.file), l.line);

        // --- Event stream ---------------------------------------------------
        // Alloc ids are renumbered densely in first-appearance order; a
        // `Free` of a never-allocated id also claims a fresh id, keeping it
        // dangling in the merged trace as well.
        let mut alloc_map: HashMap<AllocId, AllocId> = HashMap::new();
        let mut map_alloc = |id: AllocId| {
            *alloc_map.entry(id).or_insert_with(|| {
                let fresh = AllocId(next_alloc);
                next_alloc += 1;
                fresh
            })
        };
        let part_last_ts = part.events.last().map(|e| e.ts).unwrap_or(0);
        for te in part.events {
            let ev = match te.event {
                Event::LockInit {
                    addr,
                    name,
                    flavor,
                    is_static,
                } => Event::LockInit {
                    addr,
                    name: map_sym(name),
                    flavor,
                    is_static,
                },
                Event::Alloc {
                    id,
                    addr,
                    size,
                    data_type,
                    subclass,
                } => Event::Alloc {
                    id: map_alloc(id),
                    addr,
                    size,
                    data_type: map_dt(data_type),
                    subclass: subclass.map(map_sym),
                },
                Event::Free { id } => Event::Free { id: map_alloc(id) },
                Event::LockAcquire { addr, mode, loc } => Event::LockAcquire {
                    addr,
                    mode,
                    loc: map_loc(loc),
                },
                Event::LockRelease { addr, loc } => Event::LockRelease {
                    addr,
                    loc: map_loc(loc),
                },
                Event::MemAccess {
                    kind,
                    addr,
                    size,
                    loc,
                    atomic,
                } => Event::MemAccess {
                    kind,
                    addr,
                    size,
                    loc: map_loc(loc),
                    atomic,
                },
                Event::FnEnter { func } => Event::FnEnter { func: map_fn(func) },
                Event::FnExit { func } => Event::FnExit { func: map_fn(func) },
                Event::TaskSwitch { task } => Event::TaskSwitch {
                    task: map_task(task),
                },
                Event::ContextEnter { kind } => Event::ContextEnter { kind },
                Event::ContextExit { kind } => Event::ContextExit { kind },
            };
            out.push(ts_base + te.ts, ev);
        }
        ts_base += part_last_ts;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::import;
    use crate::event::{AccessKind, LockFlavor, MemberDef};
    use crate::filter::FilterConfig;

    fn toy_type() -> DataTypeDef {
        DataTypeDef {
            name: "obj".into(),
            size: 8,
            members: vec![MemberDef {
                name: "val".into(),
                offset: 0,
                size: 8,
                atomic: false,
                is_lock: false,
            }],
        }
    }

    fn part(base_addr: Addr, task: &str) -> Trace {
        let mut tr = Trace::new();
        let file = tr.meta.strings.intern("obj.c");
        let dt = tr.meta.add_data_type(toy_type());
        let t = tr.meta.add_task(task);
        let f = tr.meta.add_function("touch");
        tr.push(1, Event::TaskSwitch { task: t });
        tr.push(
            2,
            Event::Alloc {
                id: AllocId(1),
                addr: base_addr,
                size: 8,
                data_type: dt,
                subclass: None,
            },
        );
        tr.push(3, Event::FnEnter { func: f });
        tr.push(
            4,
            Event::MemAccess {
                kind: AccessKind::Write,
                addr: base_addr,
                size: 8,
                loc: SourceLoc::new(file, 1),
                atomic: false,
            },
        );
        tr.push(5, Event::FnExit { func: f });
        tr.push(6, Event::Free { id: AllocId(1) });
        tr
    }

    #[test]
    fn concat_rebases_timestamps_and_alloc_ids() {
        let merged = concat_traces(vec![part(0x1000, "a"), part(0x2000, "b")]).unwrap();
        assert_eq!(merged.events.len(), 12);
        // Timestamps keep increasing across the boundary.
        let ts: Vec<u64> = merged.events.iter().map(|e| e.ts).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ts[6], 6 + 1);
        // Both allocations survive with distinct dense ids.
        let ids: Vec<AllocId> = merged
            .events
            .iter()
            .filter_map(|e| match e.event {
                Event::Alloc { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![AllocId(1), AllocId(2)]);
        // Shared metadata is unioned by name, per-part tasks are kept.
        assert_eq!(merged.meta.data_types.len(), 1);
        assert_eq!(merged.meta.functions, vec!["touch".to_owned()]);
        assert_eq!(merged.meta.tasks, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn concat_output_imports_cleanly() {
        let merged = concat_traces(vec![part(0x1000, "a"), part(0x2000, "b")]).unwrap();
        let db = import(&merged, &FilterConfig::with_defaults(), 1);
        assert_eq!(db.stats.invalid_events, 0);
        assert_eq!(db.allocations.len(), 2);
        assert_eq!(db.accesses.len(), 2);
        assert_eq!(db.stats.unresolved, 0);
    }

    #[test]
    fn concat_rejects_overlapping_address_ranges() {
        let err = concat_traces(vec![part(0x1000, "a"), part(0x1004, "b")]).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn concat_rejects_conflicting_type_layouts() {
        let a = part(0x1000, "a");
        let mut b = part(0x2000, "b");
        b.meta.data_types[0].size = 16;
        let err = concat_traces(vec![a, b]).unwrap_err();
        assert!(err.contains("conflicting layouts"), "{err}");
    }

    #[test]
    fn concat_keeps_dangling_ids_dangling() {
        let mut tr = Trace::new();
        tr.meta.add_task("t");
        tr.push(1, Event::Free { id: AllocId(77) });
        tr.push(
            2,
            Event::LockInit {
                addr: 0x10,
                name: Sym(99), // dangling symbol
                flavor: LockFlavor::Mutex,
                is_static: true,
            },
        );
        let merged = concat_traces(vec![tr]).unwrap();
        let db = import(&merged, &FilterConfig::with_defaults(), 1);
        // The dangling LockInit stays invalid; the unknown free is counted
        // but registers nothing.
        assert_eq!(db.stats.invalid_events, 1);
        assert_eq!(db.stats.frees, 1);
        assert_eq!(db.allocations.len(), 0);
    }
}
