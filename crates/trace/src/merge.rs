//! Concatenation of independently recorded traces into one well-formed
//! trace, used by the sharded ksim workload runner: every shard records on
//! its own `Machine`, and the shards' traces are stitched together here.
//!
//! Each part keeps its events in order but gets
//! - its metadata unioned into the merged trace (strings by value, data
//!   types / functions / tasks by name),
//! - its timestamps rebased so simulated time keeps increasing across the
//!   shard boundary,
//! - its allocation ids densely renumbered so ids stay unique and strictly
//!   increasing across parts (keeping `TraceDb::allocation`'s binary
//!   search valid).
//!
//! Addresses are **not** rewritten: the caller must hand in parts with
//! disjoint address ranges (ksim derives a per-shard address base from the
//! shard index), and [`concat_traces`] rejects overlapping parts — an
//! allocation from one shard still live at its trace's end would otherwise
//! swallow or invalidate same-address allocations of later shards.

use crate::event::{DataTypeDef, Event, SourceLoc, Trace, TraceMeta};
use crate::ids::{Addr, AllocId, DataTypeId, FnId, Sym, TaskId};
use std::collections::HashMap;
use std::fmt;

/// Why [`concat_traces`] refused to merge its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// Two parts touch overlapping address ranges; allocation resolution
    /// after the merge would be silently corrupted.
    AddressOverlap {
        /// Index of the earlier offending part.
        first: usize,
        /// Index of the later offending part.
        second: usize,
        /// Address range `[min, max)` of the earlier part.
        first_range: (Addr, Addr),
        /// Address range `[min, max)` of the later part.
        second_range: (Addr, Addr),
    },
    /// Two parts define the same data type name with different layouts.
    ConflictingLayout {
        /// Name of the data type with divergent definitions.
        type_name: String,
    },
    /// A part's own event stream travels back in time; rebasing cannot
    /// repair it and the merged trace would violate the `Trace` invariant.
    NonMonotonic {
        /// Index of the offending part.
        part: usize,
        /// Index of the first event whose timestamp regresses.
        event_index: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::AddressOverlap {
                first,
                second,
                first_range,
                second_range,
            } => write!(
                f,
                "traces {first} and {second} overlap in address space \
                 ([{:#x}, {:#x}) vs [{:#x}, {:#x})); record shards with \
                 disjoint address bases",
                first_range.0, first_range.1, second_range.0, second_range.1
            ),
            MergeError::ConflictingLayout { type_name } => write!(
                f,
                "conflicting layouts for data type `{type_name}` across traces"
            ),
            MergeError::NonMonotonic { part, event_index } => write!(
                f,
                "trace {part} is not time-ordered: event {event_index} \
                 travels back in time"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Sentinel for ids that were already dangling in a source part; they must
/// stay dangling in the merged trace (the importer counts them as invalid
/// events) instead of aliasing a real entry of the merged metadata.
const INVALID: u32 = u32::MAX;

/// Id remappings of one part's metadata into a union metadata table, as
/// produced by [`union_meta`]: index a part-local id's `index()` into the
/// matching vector to get the merged id.
#[derive(Debug, Clone, Default)]
pub struct MetaMaps {
    /// Part string `Sym` → merged `Sym`, indexed by part symbol index.
    pub syms: Vec<Sym>,
    /// Part `DataTypeId` → merged `DataTypeId`.
    pub data_types: Vec<DataTypeId>,
    /// Part `FnId` → merged `FnId`.
    pub functions: Vec<FnId>,
    /// Part `TaskId` → merged `TaskId`.
    pub tasks: Vec<TaskId>,
}

/// Unions one part's metadata into `out` — strings by value, data types /
/// functions / tasks by name — returning the part→merged id maps.
///
/// This is *the* metadata-union rule: [`concat_traces`] applies it part by
/// part while rewriting events, and the corpus layer applies it to trace
/// headers alone to predict the merged trace's metadata without touching a
/// single event. Both must agree byte for byte, which is why they share
/// this function. Two parts defining the same data-type name with
/// different layouts cannot be merged meaningfully and are rejected.
pub fn union_meta(out: &mut TraceMeta, part: &TraceMeta) -> Result<MetaMaps, MergeError> {
    let syms: Vec<Sym> = part
        .strings
        .strings()
        .iter()
        .map(|s| out.strings.intern(s))
        .collect();
    let mut data_types: Vec<DataTypeId> = Vec::with_capacity(part.data_types.len());
    for dt in &part.data_types {
        match out.data_type_named(&dt.name) {
            Some(existing) => {
                let have: &DataTypeDef = &out.data_types[existing.index()];
                if have != dt {
                    return Err(MergeError::ConflictingLayout {
                        type_name: dt.name.clone(),
                    });
                }
                data_types.push(existing);
            }
            None => data_types.push(out.add_data_type(dt.clone())),
        }
    }
    let functions: Vec<FnId> = part
        .functions
        .iter()
        .map(|name| {
            out.functions
                .iter()
                .position(|f| f == name)
                .map(|i| FnId(i as u32))
                .unwrap_or_else(|| out.add_function(name))
        })
        .collect();
    let tasks: Vec<TaskId> = part
        .tasks
        .iter()
        .map(|name| {
            out.tasks
                .iter()
                .position(|t| t == name)
                .map(|i| TaskId(i as u32))
                .unwrap_or_else(|| out.add_task(name))
        })
        .collect();
    Ok(MetaMaps {
        syms,
        data_types,
        functions,
        tasks,
    })
}

/// The address range `[min, max)` touched by one part's events.
#[derive(Clone, Copy)]
struct AddrRange {
    min: Addr,
    max: Addr,
}

impl AddrRange {
    fn overlaps(&self, other: &AddrRange) -> bool {
        self.min < other.max && other.min < self.max
    }
}

fn addr_range(part: &Trace) -> Option<AddrRange> {
    let mut range: Option<AddrRange> = None;
    let mut extend = |lo: Addr, hi: Addr| {
        let r = range.get_or_insert(AddrRange { min: lo, max: hi });
        r.min = r.min.min(lo);
        r.max = r.max.max(hi);
    };
    for te in &part.events {
        match &te.event {
            Event::Alloc { addr, size, .. } => extend(*addr, addr.saturating_add(u64::from(*size))),
            Event::LockInit { addr, .. }
            | Event::LockAcquire { addr, .. }
            | Event::LockRelease { addr, .. }
            | Event::MemAccess { addr, .. } => extend(*addr, addr.saturating_add(1)),
            _ => {}
        }
    }
    range
}

/// Concatenates `parts` into one trace (see the module docs for the
/// remapping rules). Parts must occupy pairwise disjoint address ranges;
/// overlapping parts are rejected with a descriptive error.
pub fn concat_traces(parts: Vec<Trace>) -> Result<Trace, MergeError> {
    // Validate part-local time order up front: `Trace::push` asserts
    // monotonicity, so a regressing part must be a typed error here, not a
    // panic mid-merge.
    for (pi, part) in parts.iter().enumerate() {
        if let Some(wi) = part.events.windows(2).position(|w| w[1].ts < w[0].ts) {
            return Err(MergeError::NonMonotonic {
                part: pi,
                event_index: wi + 1,
            });
        }
    }

    // Reject address collisions up front: they would silently corrupt
    // allocation resolution after the merge.
    let ranges: Vec<Option<AddrRange>> = parts.iter().map(addr_range).collect();
    for i in 0..ranges.len() {
        for j in i + 1..ranges.len() {
            if let (Some(a), Some(b)) = (&ranges[i], &ranges[j]) {
                if a.overlaps(b) {
                    return Err(MergeError::AddressOverlap {
                        first: i,
                        second: j,
                        first_range: (a.min, a.max),
                        second_range: (b.min, b.max),
                    });
                }
            }
        }
    }

    let mut out = Trace::new();
    let mut ts_base = 0u64;
    let mut next_alloc = 1u64;

    for part in parts {
        // --- Metadata union -------------------------------------------------
        let maps = union_meta(out.meta_mut(), &part.meta)?;

        let map_sym = |s: Sym| maps.syms.get(s.index()).copied().unwrap_or(Sym(INVALID));
        let map_dt = |d: DataTypeId| {
            maps.data_types
                .get(d.index())
                .copied()
                .unwrap_or(DataTypeId(INVALID))
        };
        let map_fn = |f: FnId| {
            maps.functions
                .get(f.index())
                .copied()
                .unwrap_or(FnId(INVALID))
        };
        let map_task = |t: TaskId| {
            maps.tasks
                .get(t.index())
                .copied()
                .unwrap_or(TaskId(INVALID))
        };
        let map_loc = |l: SourceLoc| SourceLoc::new(map_sym(l.file), l.line);

        // --- Event stream ---------------------------------------------------
        // Alloc ids are renumbered densely in first-appearance order; a
        // `Free` of a never-allocated id also claims a fresh id, keeping it
        // dangling in the merged trace as well.
        let mut alloc_map: HashMap<AllocId, AllocId> = HashMap::new();
        let mut map_alloc = |id: AllocId| {
            *alloc_map.entry(id).or_insert_with(|| {
                let fresh = AllocId(next_alloc);
                next_alloc += 1;
                fresh
            })
        };
        let part_last_ts = part.events.last().map(|e| e.ts).unwrap_or(0);
        for te in part.events {
            let ev = match te.event {
                Event::LockInit {
                    addr,
                    name,
                    flavor,
                    is_static,
                } => Event::LockInit {
                    addr,
                    name: map_sym(name),
                    flavor,
                    is_static,
                },
                Event::Alloc {
                    id,
                    addr,
                    size,
                    data_type,
                    subclass,
                } => Event::Alloc {
                    id: map_alloc(id),
                    addr,
                    size,
                    data_type: map_dt(data_type),
                    subclass: subclass.map(map_sym),
                },
                Event::Free { id } => Event::Free { id: map_alloc(id) },
                Event::LockAcquire { addr, mode, loc } => Event::LockAcquire {
                    addr,
                    mode,
                    loc: map_loc(loc),
                },
                Event::LockRelease { addr, loc } => Event::LockRelease {
                    addr,
                    loc: map_loc(loc),
                },
                Event::MemAccess {
                    kind,
                    addr,
                    size,
                    loc,
                    atomic,
                } => Event::MemAccess {
                    kind,
                    addr,
                    size,
                    loc: map_loc(loc),
                    atomic,
                },
                Event::FnEnter { func } => Event::FnEnter { func: map_fn(func) },
                Event::FnExit { func } => Event::FnExit { func: map_fn(func) },
                Event::TaskSwitch { task } => Event::TaskSwitch {
                    task: map_task(task),
                },
                Event::ContextEnter { kind } => Event::ContextEnter { kind },
                Event::ContextExit { kind } => Event::ContextExit { kind },
            };
            // Saturating: rebased time near u64::MAX clamps instead of
            // panicking; monotonicity is preserved either way.
            out.push(ts_base.saturating_add(te.ts), ev);
        }
        ts_base = ts_base.saturating_add(part_last_ts);
    }
    Ok(out)
}

/// [`concat_traces`] for parts that may collide in address space —
/// independently recorded corpus traces all start at the recorder's
/// default address base, so plain concatenation would reject them.
///
/// Every part's addresses are shifted by a per-part constant into
/// disjoint windows (each part normalized to its own minimum, then laid
/// out left to right with a one-page guard gap). The shift is a pure
/// function of the parts' contents in order, so the merged trace is
/// deterministic; descriptors and all analysis results are
/// offset-invariant because a constant shift preserves every within-part
/// address relationship (allocation containment, embedded-lock offsets)
/// and addresses never appear in analysis output.
pub fn concat_traces_rebased(parts: Vec<Trace>) -> Result<Trace, MergeError> {
    concat_traces(rebase_parts(parts))
}

/// Shifts each part's addresses into pairwise disjoint windows: every part
/// is normalized to its own minimum address, then the windows are laid out
/// left to right with a one-page guard gap. Shared by
/// [`concat_traces_rebased`] and [`concat_traces_corpus`].
fn rebase_parts(parts: Vec<Trace>) -> Vec<Trace> {
    const GUARD: Addr = 0x1000;
    let mut next_base: Addr = GUARD;
    parts
        .into_iter()
        .map(|part| {
            let Some(range) = addr_range(&part) else {
                return part; // no addresses, nothing to shift
            };
            let base = next_base;
            let width = range.max.saturating_sub(range.min);
            next_base = next_base.saturating_add(width).saturating_add(GUARD);
            let shift = |a: Addr| base.saturating_add(a.saturating_sub(range.min));
            let events = part
                .events
                .iter()
                .map(|te| {
                    let event = match te.event.clone() {
                        Event::Alloc {
                            id,
                            addr,
                            size,
                            data_type,
                            subclass,
                        } => Event::Alloc {
                            id,
                            addr: shift(addr),
                            size,
                            data_type,
                            subclass,
                        },
                        Event::LockInit {
                            addr,
                            name,
                            flavor,
                            is_static,
                        } => Event::LockInit {
                            addr: shift(addr),
                            name,
                            flavor,
                            is_static,
                        },
                        Event::LockAcquire { addr, mode, loc } => Event::LockAcquire {
                            addr: shift(addr),
                            mode,
                            loc,
                        },
                        Event::LockRelease { addr, loc } => Event::LockRelease {
                            addr: shift(addr),
                            loc,
                        },
                        Event::MemAccess {
                            kind,
                            addr,
                            size,
                            loc,
                            atomic,
                        } => Event::MemAccess {
                            kind,
                            addr: shift(addr),
                            size,
                            loc,
                            atomic,
                        },
                        other => other,
                    };
                    crate::event::TraceEvent { ts: te.ts, event }
                })
                .collect();
            Trace {
                meta: part.meta,
                events,
            }
        })
        .collect()
}

/// Renames every task of part `part_idx` to `"{name}.t{part_idx}"`.
///
/// Independently recorded traces reuse the same task names (a recorder's
/// worker threads are `worker-0`, `worker-1`, … in every run), and
/// [`union_meta`] merges tasks by name — so without the rename, one
/// part's tasks would continue the *flows* of a previous part's
/// same-named tasks across the merge boundary. The importer keeps an
/// open lock-free transaction per flow that only a lock operation in
/// that flow closes, so a continued flow can silently absorb the next
/// part's first lock-free accesses into the previous part's transaction.
/// Per-part task names make every task flow part-fresh.
fn isolate_part_tasks(meta: &mut TraceMeta, part_idx: usize) {
    for name in &mut meta.tasks {
        *name = format!("{name}.t{part_idx}");
    }
}

/// [`concat_traces_rebased`] for *independently recorded* corpus traces,
/// with the per-part flow isolation the corpus derivation layer depends
/// on: per-trace analysis results merge exactly into whole-corpus results
/// only if no importer flow spans a part boundary.
///
/// On top of address rebasing this
/// - renames each part's tasks to `"{name}.t{i}"` (see
///   [`isolate_part_tasks`]), and
/// - materializes each part's initial task: the importer starts every
///   trace in task 0, and recorders leave that first switch implicit, so
///   a leading `TaskSwitch` to task 0 is injected (at the part's first
///   timestamp) for every part that declares tasks. Without it, a part's
///   leading events would run in whatever flow the previous part ended
///   in.
///
/// Interrupt flows need no such isolation here, but they do constrain
/// the inputs: parts must be *quiescent* at their ends (all locks
/// released, contexts exited, function stacks unwound) for the merged
/// trace to be equivalent to the parts analyzed separately.
pub fn concat_traces_corpus(parts: Vec<Trace>) -> Result<Trace, MergeError> {
    let prepared: Vec<Trace> = rebase_parts(parts)
        .into_iter()
        .enumerate()
        .map(|(i, mut part)| {
            isolate_part_tasks(part.meta_mut(), i);
            if !part.meta.tasks.is_empty() {
                if let Some(first_ts) = part.events.first().map(|e| e.ts) {
                    // Equal timestamps are fine: monotonicity is non-strict.
                    part.events.insert(
                        0,
                        crate::event::TraceEvent {
                            ts: first_ts,
                            event: Event::TaskSwitch { task: TaskId(0) },
                        },
                    );
                }
            }
            part
        })
        .collect();
    concat_traces(prepared)
}

/// Predicts the metadata of [`concat_traces_corpus`]'s output from the
/// parts' metadata alone — no events needed. The corpus layer uses this
/// to map cached per-trace results onto merged ids without re-decoding
/// any trace; [`concat_traces_corpus`] and this function must agree byte
/// for byte (they share [`union_meta`] and [`isolate_part_tasks`]).
pub fn corpus_meta(metas: &[TraceMeta]) -> Result<TraceMeta, MergeError> {
    let mut out = TraceMeta::default();
    for (i, meta) in metas.iter().enumerate() {
        let mut part = meta.clone();
        isolate_part_tasks(&mut part, i);
        union_meta(&mut out, &part)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::import;
    use crate::event::{AccessKind, LockFlavor, MemberDef};
    use crate::filter::FilterConfig;

    fn toy_type() -> DataTypeDef {
        DataTypeDef {
            name: "obj".into(),
            size: 8,
            members: vec![MemberDef {
                name: "val".into(),
                offset: 0,
                size: 8,
                atomic: false,
                is_lock: false,
            }],
        }
    }

    fn part(base_addr: Addr, task: &str) -> Trace {
        let mut tr = Trace::new();
        let file = tr.meta_mut().strings.intern("obj.c");
        let dt = tr.meta_mut().add_data_type(toy_type());
        let t = tr.meta_mut().add_task(task);
        let f = tr.meta_mut().add_function("touch");
        tr.push(1, Event::TaskSwitch { task: t });
        tr.push(
            2,
            Event::Alloc {
                id: AllocId(1),
                addr: base_addr,
                size: 8,
                data_type: dt,
                subclass: None,
            },
        );
        tr.push(3, Event::FnEnter { func: f });
        tr.push(
            4,
            Event::MemAccess {
                kind: AccessKind::Write,
                addr: base_addr,
                size: 8,
                loc: SourceLoc::new(file, 1),
                atomic: false,
            },
        );
        tr.push(5, Event::FnExit { func: f });
        tr.push(6, Event::Free { id: AllocId(1) });
        tr
    }

    #[test]
    fn concat_rebases_timestamps_and_alloc_ids() {
        let merged = concat_traces(vec![part(0x1000, "a"), part(0x2000, "b")]).unwrap();
        assert_eq!(merged.events.len(), 12);
        // Timestamps keep increasing across the boundary.
        let ts: Vec<u64> = merged.events.iter().map(|e| e.ts).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ts[6], 6 + 1);
        // Both allocations survive with distinct dense ids.
        let ids: Vec<AllocId> = merged
            .events
            .iter()
            .filter_map(|e| match e.event {
                Event::Alloc { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![AllocId(1), AllocId(2)]);
        // Shared metadata is unioned by name, per-part tasks are kept.
        assert_eq!(merged.meta.data_types.len(), 1);
        assert_eq!(merged.meta.functions, vec!["touch".to_owned()]);
        assert_eq!(merged.meta.tasks, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn concat_output_imports_cleanly() {
        let merged = concat_traces(vec![part(0x1000, "a"), part(0x2000, "b")]).unwrap();
        let db = import(&merged, &FilterConfig::with_defaults(), 1);
        assert_eq!(db.stats.invalid_events, 0);
        assert_eq!(db.allocations.len(), 2);
        assert_eq!(db.accesses.len(), 2);
        assert_eq!(db.stats.unresolved, 0);
    }

    #[test]
    fn concat_rejects_overlapping_address_ranges() {
        let err = concat_traces(vec![part(0x1000, "a"), part(0x1004, "b")]).unwrap_err();
        assert!(
            matches!(
                err,
                MergeError::AddressOverlap {
                    first: 0,
                    second: 1,
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("overlap"), "{err}");
    }

    #[test]
    fn concat_rejects_conflicting_type_layouts() {
        let a = part(0x1000, "a");
        let mut b = part(0x2000, "b");
        b.meta_mut().data_types[0].size = 16;
        let err = concat_traces(vec![a, b]).unwrap_err();
        assert_eq!(
            err,
            MergeError::ConflictingLayout {
                type_name: "obj".into()
            }
        );
        assert!(err.to_string().contains("conflicting layouts"), "{err}");
    }

    #[test]
    fn concat_rejects_time_travelling_parts() {
        let good = part(0x1000, "a");
        // Build a regressing part via a struct literal: `Trace::push`
        // asserts monotonicity, which is exactly what a hostile or buggy
        // recorder bypasses.
        let mut bad = part(0x2000, "b");
        bad.events[3].ts = 1; // was 4, after event 2 at ts 3
        let bad = Trace {
            meta: bad.meta.clone(),
            events: bad.events,
        };
        let err = concat_traces(vec![good, bad]).unwrap_err();
        assert_eq!(
            err,
            MergeError::NonMonotonic {
                part: 1,
                event_index: 3
            }
        );
    }

    #[test]
    fn rebased_concat_accepts_overlapping_parts() {
        // Identical address bases — plain concat refuses, rebased merges.
        let a = part(0x1000, "a");
        let b = part(0x1000, "b");
        assert!(concat_traces(vec![a.clone(), b.clone()]).is_err());
        let merged = concat_traces_rebased(vec![a, b]).unwrap();
        let db = import(&merged, &FilterConfig::with_defaults(), 1);
        assert_eq!(db.stats.invalid_events, 0);
        assert_eq!(db.allocations.len(), 2);
        assert_eq!(db.accesses.len(), 2);
        assert_eq!(db.stats.unresolved, 0);
    }

    #[test]
    fn rebased_concat_is_deterministic_and_meta_matches_union() {
        let parts = || vec![part(0x1000, "a"), part(0x1000, "b"), part(0x4000, "c")];
        let m1 = concat_traces_rebased(parts()).unwrap();
        let m2 = concat_traces_rebased(parts()).unwrap();
        assert_eq!(m1, m2, "rebased merge is a pure function of the parts");
        // The merged metadata is predictable from headers alone via
        // union_meta — the corpus layer depends on this equivalence.
        let mut meta = TraceMeta::default();
        for p in parts() {
            union_meta(&mut meta, &p.meta).unwrap();
        }
        assert_eq!(*m1.meta, meta);
    }

    #[test]
    fn union_meta_maps_ids_by_name() {
        let a = part(0x1000, "a");
        let b = part(0x2000, "b");
        let mut meta = TraceMeta::default();
        let ma = union_meta(&mut meta, &a.meta).unwrap();
        let mb = union_meta(&mut meta, &b.meta).unwrap();
        // Shared entities land on the same merged ids; per-part tasks don't.
        assert_eq!(ma.data_types, mb.data_types);
        assert_eq!(ma.functions, mb.functions);
        assert_ne!(ma.tasks, mb.tasks);
        assert_eq!(meta.tasks, vec!["a".to_owned(), "b".to_owned()]);
        // Conflicting layouts are refused.
        let mut c = part(0x3000, "c");
        c.meta_mut().data_types[0].size = 16;
        assert!(matches!(
            union_meta(&mut meta, &c.meta),
            Err(MergeError::ConflictingLayout { .. })
        ));
    }

    #[test]
    fn corpus_concat_isolates_task_flows() {
        let parts = || vec![part(0x1000, "worker"), part(0x1000, "worker")];
        // Same-named tasks merge into one flow under plain rebased concat:
        // the first part's still-open lock-free transaction absorbs the
        // second part's access.
        let bridged = concat_traces_rebased(parts()).unwrap();
        let db = import(&bridged, &FilterConfig::with_defaults(), 1);
        assert_eq!(db.accesses.get(0).txn, db.accesses.get(1).txn);
        // Corpus concat renames tasks per part, keeping each part's flows
        // (and thus transactions) to itself.
        let merged = concat_traces_corpus(parts()).unwrap();
        let db = import(&merged, &FilterConfig::with_defaults(), 1);
        assert_eq!(db.stats.invalid_events, 0);
        assert!(db.accesses.get(0).txn.is_some());
        assert_ne!(db.accesses.get(0).txn, db.accesses.get(1).txn);
        assert_eq!(
            merged.meta.tasks,
            vec!["worker.t0".to_owned(), "worker.t1".to_owned()]
        );
    }

    #[test]
    fn corpus_concat_materializes_implicit_initial_task() {
        // Recorders leave the initial task switch implicit when execution
        // starts on task 0; corpus concat must inject it or the part's
        // leading events run in the previous part's flow.
        let implicit = |task: &str| {
            let mut tr = part(0x1000, task);
            tr.events.remove(0); // drop the explicit TaskSwitch
            tr
        };
        let merged = concat_traces_corpus(vec![implicit("worker"), implicit("worker")]).unwrap();
        let db = import(&merged, &FilterConfig::with_defaults(), 1);
        assert_eq!(db.stats.invalid_events, 0);
        assert!(db.accesses.get(0).txn.is_some());
        assert_ne!(db.accesses.get(0).txn, db.accesses.get(1).txn);
    }

    #[test]
    fn corpus_meta_predicts_merged_metadata() {
        let parts = || {
            vec![
                part(0x1000, "worker"),
                part(0x1000, "worker"),
                part(0x4000, "other"),
            ]
        };
        let merged = concat_traces_corpus(parts()).unwrap();
        let metas: Vec<TraceMeta> = parts().iter().map(|p| (*p.meta).clone()).collect();
        let predicted = corpus_meta(&metas).unwrap();
        assert_eq!(*merged.meta, predicted);
    }

    #[test]
    fn concat_keeps_dangling_ids_dangling() {
        let mut tr = Trace::new();
        tr.meta_mut().add_task("t");
        tr.push(1, Event::Free { id: AllocId(77) });
        tr.push(
            2,
            Event::LockInit {
                addr: 0x10,
                name: Sym(99), // dangling symbol
                flavor: LockFlavor::Mutex,
                is_static: true,
            },
        );
        let merged = concat_traces(vec![tr]).unwrap();
        let db = import(&merged, &FilterConfig::with_defaults(), 1);
        // The dangling LockInit stays invalid; the unknown free is counted
        // but registers nothing.
        assert_eq!(db.stats.invalid_events, 1);
        assert_eq!(db.stats.frees, 1);
        assert_eq!(db.allocations.len(), 0);
    }
}
