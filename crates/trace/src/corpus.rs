//! Corpus store: a directory of `.ldoc` traces managed as one analysis
//! unit.
//!
//! The store owns two directories — the corpus directory holding the
//! trace containers, and a cache directory for derived artifacts
//! (columnar import archives, observation-matrix files, the corpus rules
//! cache). Corpus membership *is* the directory listing: `add` copies a
//! container in, `drop_trace` removes one, and every scan sees the
//! members in sorted name order, so the corpus order — which downstream
//! fingerprints and merges depend on — is a pure function of the
//! directory contents.
//!
//! Every member is screened on load with the resilient pipeline
//! ([`crate::codec::read_trace_salvage`] +
//! [`crate::db::import_resilient`] with an unlimited error budget):
//! - [`Health::Healthy`] — container and event stream are pristine;
//! - [`Health::Degraded`] — damage was salvaged and/or events were
//!   quarantined; the returned trace is *sanitized* (quarantined events
//!   removed), so every later consumer — per-trace analysis and corpus
//!   merge alike — sees the identical event stream;
//! - [`Health::Unreadable`] — the container header is beyond salvage;
//!   no trace is returned and the member is excluded from analysis.

use crate::codec::{read_trace_salvage, SalvageReport};
use crate::db::{fnv1a, import_resilient, ImportReport, ResilientConfig};
use crate::event::Trace;
use crate::filter::FilterConfig;
use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Screening verdict for one corpus member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Container and event stream decoded and imported without a single
    /// complaint.
    Healthy,
    /// Some damage was worked around (salvaged decode errors and/or
    /// quarantined events); the sanitized remainder is usable.
    Degraded,
    /// The container header is unusable; the member carries no trace.
    Unreadable,
}

impl Health {
    /// Stable lower-case label (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Unreadable => "unreadable",
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything the screening pass learned about one member.
#[derive(Debug, Clone)]
pub struct ScreenReport {
    /// Overall verdict.
    pub health: Health,
    /// Container-level salvage report (absent when unreadable).
    pub salvage: Option<SalvageReport>,
    /// Event-level quarantine report (absent when unreadable).
    pub import: Option<ImportReport>,
    /// Decode error for unreadable members.
    pub error: Option<String>,
}

/// One screened corpus member.
#[derive(Debug, Clone)]
pub struct LoadedTrace {
    /// Member name (the container's file name).
    pub name: String,
    /// FNV-1a over the container's raw bytes — the key all derived
    /// artifacts of this member are bound to.
    pub checksum: u64,
    /// The sanitized trace (salvaged, quarantined events removed), or
    /// `None` for unreadable members.
    pub trace: Option<Trace>,
    /// The screening detail.
    pub screen: ScreenReport,
}

/// Screens one container: salvage the byte stream, quarantine malformed
/// events (unlimited budget — screening reports damage, it never refuses
/// over it), and strip the quarantined events from the returned trace so
/// all downstream consumers agree on the event stream.
pub fn screen_trace(
    bytes: &[u8],
    filter: &FilterConfig,
    jobs: usize,
) -> (Option<Trace>, ScreenReport) {
    let (mut trace, salvage) = match read_trace_salvage(bytes) {
        Ok(ok) => ok,
        Err(e) => {
            return (
                None,
                ScreenReport {
                    health: Health::Unreadable,
                    salvage: None,
                    import: None,
                    error: Some(e.to_string()),
                },
            );
        }
    };
    let report = match import_resilient(&trace, filter, jobs, &ResilientConfig::lenient(1.0)) {
        Ok((_, report)) => report,
        Err(e) => {
            // Unreachable with an unlimited budget, but a refusal must
            // still degrade to "unreadable" rather than panic.
            return (
                None,
                ScreenReport {
                    health: Health::Unreadable,
                    salvage: Some(salvage),
                    import: None,
                    error: Some(e.to_string()),
                },
            );
        }
    };
    if !report.is_clean() {
        let bad: HashSet<u64> = report.quarantined.iter().map(|q| q.event_index).collect();
        trace.events = trace
            .events
            .iter()
            .enumerate()
            .filter(|(i, _)| !bad.contains(&(*i as u64)))
            .map(|(_, te)| te.clone())
            .collect();
    }
    let health = if salvage.is_clean() && report.is_clean() {
        Health::Healthy
    } else {
        Health::Degraded
    };
    (
        Some(trace),
        ScreenReport {
            health,
            salvage: Some(salvage),
            import: Some(report),
            error: None,
        },
    )
}

/// A corpus directory plus its artifact cache directory.
#[derive(Debug, Clone)]
pub struct CorpusStore {
    dir: PathBuf,
    cache_dir: PathBuf,
}

impl CorpusStore {
    /// Opens (creating if needed) a corpus at `dir` with derived
    /// artifacts under `cache_dir`.
    pub fn open(dir: &Path, cache_dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        fs::create_dir_all(cache_dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            cache_dir: cache_dir.to_path_buf(),
        })
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact cache directory.
    pub fn cache_dir(&self) -> &Path {
        &self.cache_dir
    }

    /// Member names — all `*.ldoc` file names in the corpus directory —
    /// in sorted order. This order is the corpus order everywhere
    /// (merging, fingerprints, reports).
    pub fn trace_names(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("ldoc") {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Path of a member container.
    pub fn trace_path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Path of a derived artifact for a member, keyed by the member's
    /// *content* checksum: replacing a trace changes the key, so stale
    /// artifacts are never even opened (they are merely orphaned).
    pub fn artifact_path(&self, name: &str, checksum: u64, ext: &str) -> PathBuf {
        self.cache_dir.join(format!("{name}.{checksum:016x}.{ext}"))
    }

    /// Path of a corpus-wide (not per-member) cache file.
    pub fn corpus_file(&self, file_name: &str) -> PathBuf {
        self.cache_dir.join(file_name)
    }

    /// Copies a container into the corpus under its own file name,
    /// returning the member name. Refuses to overwrite an existing
    /// member (drop it first) so a corpus cannot change silently.
    pub fn add(&self, src: &Path) -> io::Result<String> {
        let name = src
            .file_name()
            .and_then(|n| n.to_str())
            .filter(|n| n.ends_with(".ldoc"))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("not a .ldoc container: {}", src.display()),
                )
            })?
            .to_owned();
        let dst = self.trace_path(&name);
        if dst.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("corpus already contains `{name}`; drop it first"),
            ));
        }
        fs::copy(src, &dst)?;
        Ok(name)
    }

    /// Removes a member container from the corpus.
    pub fn drop_trace(&self, name: &str) -> io::Result<()> {
        let path = self.trace_path(name);
        if !path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such corpus member: `{name}`"),
            ));
        }
        fs::remove_file(path)
    }

    /// Reads and screens one member.
    pub fn load(&self, name: &str, filter: &FilterConfig, jobs: usize) -> io::Result<LoadedTrace> {
        let bytes = fs::read(self.trace_path(name))?;
        let checksum = fnv1a(&bytes);
        let (trace, screen) = screen_trace(&bytes, filter, jobs);
        Ok(LoadedTrace {
            name: name.to_owned(),
            checksum,
            trace,
            screen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::write_trace;
    use crate::event::{AccessKind, DataTypeDef, Event, MemberDef, SourceLoc};
    use crate::ids::AllocId;

    fn toy_trace() -> Trace {
        let mut tr = Trace::new();
        let file = tr.meta_mut().strings.intern("t.c");
        let dt = tr.meta_mut().add_data_type(DataTypeDef {
            name: "obj".into(),
            size: 8,
            members: vec![MemberDef {
                name: "val".into(),
                offset: 0,
                size: 8,
                atomic: false,
                is_lock: false,
            }],
        });
        let t = tr.meta_mut().add_task("w");
        tr.push(1, Event::TaskSwitch { task: t });
        tr.push(
            2,
            Event::Alloc {
                id: AllocId(1),
                addr: 0x1000,
                size: 8,
                data_type: dt,
                subclass: None,
            },
        );
        tr.push(
            3,
            Event::MemAccess {
                kind: AccessKind::Write,
                addr: 0x1000,
                size: 8,
                loc: SourceLoc::new(file, 1),
                atomic: false,
            },
        );
        tr.push(4, Event::Free { id: AllocId(1) });
        tr
    }

    fn container() -> Vec<u8> {
        let mut buf = Vec::new();
        write_trace(&toy_trace(), &mut buf).unwrap();
        buf
    }

    #[test]
    fn store_add_list_drop_round_trip() {
        let base = std::env::temp_dir().join("lockdoc-corpus-store-test");
        fs::remove_dir_all(&base).ok();
        let store = CorpusStore::open(&base.join("corpus"), &base.join("cache")).unwrap();
        let src = base.join("b.ldoc");
        fs::write(&src, container()).unwrap();
        let src2 = base.join("a.ldoc");
        fs::write(&src2, container()).unwrap();

        assert_eq!(store.add(&src).unwrap(), "b.ldoc");
        assert_eq!(store.add(&src2).unwrap(), "a.ldoc");
        // Sorted corpus order, independent of add order.
        assert_eq!(store.trace_names().unwrap(), vec!["a.ldoc", "b.ldoc"]);
        // Double-add is refused, not silently overwritten.
        assert!(store.add(&src).is_err());
        // Non-.ldoc sources are refused.
        let other = base.join("x.bin");
        fs::write(&other, b"junk").unwrap();
        assert!(store.add(&other).is_err());

        store.drop_trace("b.ldoc").unwrap();
        assert_eq!(store.trace_names().unwrap(), vec!["a.ldoc"]);
        assert!(store.drop_trace("b.ldoc").is_err());

        // Artifact paths are keyed by name and content checksum.
        let p = store.artifact_path("a.ldoc", 0xabcd, "ldmtx");
        assert!(p
            .to_str()
            .unwrap()
            .ends_with("a.ldoc.000000000000abcd.ldmtx"));
        fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn screening_grades_healthy_degraded_unreadable() {
        let filter = FilterConfig::with_defaults();
        let good = container();

        let (trace, screen) = screen_trace(&good, &filter, 1);
        assert_eq!(screen.health, Health::Healthy);
        assert_eq!(trace.unwrap().events.len(), 4);

        // Clipping the tail degrades but still yields the salvaged prefix.
        let (trace, screen) = screen_trace(&good[..good.len() - 1], &filter, 1);
        assert_eq!(screen.health, Health::Degraded);
        assert!(screen.salvage.unwrap().truncated);
        assert!(trace.is_some());

        // Garbage is unreadable: no trace, a decode error instead.
        let (trace, screen) = screen_trace(b"not a trace", &filter, 1);
        assert_eq!(screen.health, Health::Unreadable);
        assert!(trace.is_none());
        assert!(screen.error.is_some());
        assert_eq!(screen.health.name(), "unreadable");
    }

    #[test]
    fn screening_sanitizes_quarantined_events() {
        // A structurally valid container whose event stream references a
        // dangling allocation id: the importer quarantines the Free, and
        // the sanitized trace must no longer contain it.
        let mut tr = toy_trace();
        tr.push(5, Event::Free { id: AllocId(99) });
        let mut buf = Vec::new();
        write_trace(&tr, &mut buf).unwrap();
        let (trace, screen) = screen_trace(&buf, &FilterConfig::with_defaults(), 1);
        assert_eq!(screen.health, Health::Degraded);
        let report = screen.import.unwrap();
        assert_eq!(report.quarantined.len(), 1);
        let trace = trace.unwrap();
        assert_eq!(trace.events.len(), 4, "quarantined event stripped");
        // Re-screening the sanitized stream is clean: sanitization is a
        // fixed point, so every consumer sees the same events.
        let mut clean = Vec::new();
        write_trace(&trace, &mut clean).unwrap();
        let (_, screen) = screen_trace(&clean, &FilterConfig::with_defaults(), 1);
        assert_eq!(screen.health, Health::Healthy);
    }
}
