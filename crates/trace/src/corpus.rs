//! Corpus store: a directory of `.ldoc` traces managed as one analysis
//! unit.
//!
//! The store owns two directories — the corpus directory holding the
//! trace containers, and a cache directory for derived artifacts
//! (columnar import archives, observation-matrix files, the corpus rules
//! cache). Corpus membership *is* the directory listing: `add` copies a
//! container in, `drop_trace` removes one, and every scan sees the
//! members in sorted name order, so the corpus order — which downstream
//! fingerprints and merges depend on — is a pure function of the
//! directory contents.
//!
//! Every member is screened on load with the resilient pipeline
//! ([`crate::codec::read_trace_salvage`] +
//! [`crate::db::import_resilient`] with an unlimited error budget):
//! - [`Health::Healthy`] — container and event stream are pristine;
//! - [`Health::Degraded`] — damage was salvaged and/or events were
//!   quarantined; the returned trace is *sanitized* (quarantined events
//!   removed), so every later consumer — per-trace analysis and corpus
//!   merge alike — sees the identical event stream;
//! - [`Health::Unreadable`] — the container header is beyond salvage;
//!   no trace is returned and the member is excluded from analysis.
//!
//! # Crash consistency
//!
//! All store mutations go through a [`lockdoc_platform::vfs::Vfs`]
//! handle, installing members with the atomic durable-write protocol
//! (temp file → fsync → rename → parent-directory fsync). `add` and
//! `drop_trace` additionally write a one-record **intent journal**
//! (`corpus.journal`, itself installed atomically) *before* touching the
//! member namespace and clear it after, so an interrupted operation is
//! always recoverable: [`fsck`] reads the journal, decides from the
//! on-disk evidence whether the operation completed (the destination
//! exists with the journaled content checksum), and rolls it forward or
//! back. [`fsck`] also sweeps stray atomic-write temporaries, quarantines
//! members whose containers are beyond salvage, and — under
//! [`FsckOptions::gc`] — removes cache artifacts orphaned by replaced or
//! dropped members. Every repair action is idempotent, so a crash during
//! fsck itself is recovered by running fsck again.

use crate::codec::{read_trace_salvage, SalvageReport};
use crate::db::{fnv1a, import_resilient, ImportReport, ResilientConfig};
use crate::event::Trace;
use crate::filter::FilterConfig;
use lockdoc_platform::json::{parse as json_parse, Json};
use lockdoc_platform::vfs::{is_tmp_path, tmp_path, Vfs};
use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

/// Screening verdict for one corpus member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Container and event stream decoded and imported without a single
    /// complaint.
    Healthy,
    /// Some damage was worked around (salvaged decode errors and/or
    /// quarantined events); the sanitized remainder is usable.
    Degraded,
    /// The container header is unusable; the member carries no trace.
    Unreadable,
}

impl Health {
    /// Stable lower-case label (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Unreadable => "unreadable",
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything the screening pass learned about one member.
#[derive(Debug, Clone)]
pub struct ScreenReport {
    /// Overall verdict.
    pub health: Health,
    /// Container-level salvage report (absent when unreadable).
    pub salvage: Option<SalvageReport>,
    /// Event-level quarantine report (absent when unreadable).
    pub import: Option<ImportReport>,
    /// Decode error for unreadable members.
    pub error: Option<String>,
}

/// One screened corpus member.
#[derive(Debug, Clone)]
pub struct LoadedTrace {
    /// Member name (the container's file name).
    pub name: String,
    /// FNV-1a over the container's raw bytes — the key all derived
    /// artifacts of this member are bound to.
    pub checksum: u64,
    /// The sanitized trace (salvaged, quarantined events removed), or
    /// `None` for unreadable members.
    pub trace: Option<Trace>,
    /// The screening detail.
    pub screen: ScreenReport,
}

/// Screens one container: salvage the byte stream, quarantine malformed
/// events (unlimited budget — screening reports damage, it never refuses
/// over it), and strip the quarantined events from the returned trace so
/// all downstream consumers agree on the event stream.
pub fn screen_trace(
    bytes: &[u8],
    filter: &FilterConfig,
    jobs: usize,
) -> (Option<Trace>, ScreenReport) {
    let (mut trace, salvage) = match read_trace_salvage(bytes) {
        Ok(ok) => ok,
        Err(e) => {
            return (
                None,
                ScreenReport {
                    health: Health::Unreadable,
                    salvage: None,
                    import: None,
                    error: Some(e.to_string()),
                },
            );
        }
    };
    let report = match import_resilient(&trace, filter, jobs, &ResilientConfig::lenient(1.0)) {
        Ok((_, report)) => report,
        Err(e) => {
            // Unreachable with an unlimited budget, but a refusal must
            // still degrade to "unreadable" rather than panic.
            return (
                None,
                ScreenReport {
                    health: Health::Unreadable,
                    salvage: Some(salvage),
                    import: None,
                    error: Some(e.to_string()),
                },
            );
        }
    };
    if !report.is_clean() {
        let bad: HashSet<u64> = report.quarantined.iter().map(|q| q.event_index).collect();
        trace.events = trace
            .events
            .iter()
            .enumerate()
            .filter(|(i, _)| !bad.contains(&(*i as u64)))
            .map(|(_, te)| te.clone())
            .collect();
    }
    let health = if salvage.is_clean() && report.is_clean() {
        Health::Healthy
    } else {
        Health::Degraded
    };
    (
        Some(trace),
        ScreenReport {
            health,
            salvage: Some(salvage),
            import: Some(report),
            error: None,
        },
    )
}

/// File name of the intent journal inside the corpus directory.
pub const JOURNAL_FILE: &str = "corpus.journal";

/// Directory (inside the corpus directory) where fsck quarantines
/// unreadable members.
pub const QUARANTINE_DIR: &str = ".quarantine";

/// A corpus directory plus its artifact cache directory.
#[derive(Debug, Clone)]
pub struct CorpusStore {
    dir: PathBuf,
    cache_dir: PathBuf,
    vfs: Vfs,
}

impl CorpusStore {
    /// Opens (creating if needed) a corpus at `dir` with derived
    /// artifacts under `cache_dir`, on the real filesystem (honoring the
    /// `LOCKDOC_CRASH_POINT` crash fuse — see
    /// [`lockdoc_platform::vfs::Vfs::real_from_env`]).
    pub fn open(dir: &Path, cache_dir: &Path) -> io::Result<Self> {
        Self::open_on(Vfs::real_from_env(), dir, cache_dir)
    }

    /// Opens a corpus on an explicit filesystem handle — the entry point
    /// for crash-injection tests running against an in-memory [`Vfs`].
    pub fn open_on(vfs: Vfs, dir: &Path, cache_dir: &Path) -> io::Result<Self> {
        vfs.create_dir_all(dir)?;
        vfs.create_dir_all(cache_dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            cache_dir: cache_dir.to_path_buf(),
            vfs,
        })
    }

    /// The filesystem handle all store (and caller cache) I/O must use.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact cache directory.
    pub fn cache_dir(&self) -> &Path {
        &self.cache_dir
    }

    /// Member names — all `*.ldoc` file names in the corpus directory —
    /// in sorted order. This order is the corpus order everywhere
    /// (merging, fingerprints, reports).
    pub fn trace_names(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for path in self.vfs.read_dir(&self.dir)? {
            if path.extension().and_then(|e| e.to_str()) == Some("ldoc") {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Path of a member container.
    pub fn trace_path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Path of a derived artifact for a member, keyed by the member's
    /// *content* checksum: replacing a trace changes the key, so stale
    /// artifacts are never even opened (they are merely orphaned).
    pub fn artifact_path(&self, name: &str, checksum: u64, ext: &str) -> PathBuf {
        self.cache_dir.join(format!("{name}.{checksum:016x}.{ext}"))
    }

    /// Path of a corpus-wide (not per-member) cache file.
    pub fn corpus_file(&self, file_name: &str) -> PathBuf {
        self.cache_dir.join(file_name)
    }

    /// Path of the intent journal.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    /// Writes the intent journal (atomically — the journal itself must
    /// never be torn).
    fn journal_begin(&self, record: &JournalRecord) -> io::Result<()> {
        self.vfs
            .atomic_write(&self.journal_path(), record.render().as_bytes())
    }

    /// Durably clears the intent journal after the operation's final
    /// fsync, committing it.
    fn journal_clear(&self) -> io::Result<()> {
        self.vfs.remove_file(&self.journal_path())?;
        self.vfs.fsync_dir(&self.dir)
    }

    /// Copies a container into the corpus under its own file name,
    /// returning the member name. Refuses to overwrite an existing
    /// member (drop it first) so a corpus cannot change silently.
    ///
    /// The install is crash-safe: an intent journal is committed first,
    /// then the member lands via temp file → fsync → rename →
    /// directory fsync, then the journal is cleared. A crash anywhere
    /// leaves evidence [`fsck`] resolves to exactly the pre-add or
    /// post-add corpus.
    pub fn add(&self, src: &Path) -> io::Result<String> {
        let name = src
            .file_name()
            .and_then(|n| n.to_str())
            .filter(|n| n.ends_with(".ldoc"))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("not a .ldoc container: {}", src.display()),
                )
            })?
            .to_owned();
        let dst = self.trace_path(&name);
        if self.vfs.exists(&dst) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("corpus already contains `{name}`; drop it first"),
            ));
        }
        let bytes = self.vfs.read(src)?;
        self.journal_begin(&JournalRecord {
            op: JournalOp::Add,
            name: name.clone(),
            checksum: fnv1a(&bytes),
            len: bytes.len() as u64,
        })?;
        let tmp = tmp_path(&dst);
        self.vfs.write(&tmp, &bytes)?;
        self.vfs.fsync_file(&tmp)?;
        self.vfs.rename(&tmp, &dst)?;
        self.vfs.fsync_dir(&self.dir)?;
        self.journal_clear()?;
        Ok(name)
    }

    /// Removes a member container from the corpus, journaled the same
    /// way as [`CorpusStore::add`].
    pub fn drop_trace(&self, name: &str) -> io::Result<()> {
        let path = self.trace_path(name);
        if !self.vfs.exists(&path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such corpus member: `{name}`"),
            ));
        }
        self.journal_begin(&JournalRecord {
            op: JournalOp::Drop,
            name: name.to_owned(),
            checksum: 0,
            len: 0,
        })?;
        self.vfs.remove_file(&path)?;
        self.vfs.fsync_dir(&self.dir)?;
        self.journal_clear()
    }

    /// Reads and screens one member.
    pub fn load(&self, name: &str, filter: &FilterConfig, jobs: usize) -> io::Result<LoadedTrace> {
        let bytes = self.vfs.read(&self.trace_path(name))?;
        let checksum = fnv1a(&bytes);
        let (trace, screen) = screen_trace(&bytes, filter, jobs);
        Ok(LoadedTrace {
            name: name.to_owned(),
            checksum,
            trace,
            screen,
        })
    }
}

/// The journaled operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOp {
    /// A member install in flight.
    Add,
    /// A member removal in flight.
    Drop,
}

/// One intent-journal record (the journal holds at most one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// What was in flight.
    pub op: JournalOp,
    /// The member being added or dropped.
    pub name: String,
    /// Content checksum of the member being installed (adds only) —
    /// the completion witness fsck checks the destination against.
    pub checksum: u64,
    /// Content length of the member being installed (adds only).
    pub len: u64,
}

impl JournalRecord {
    fn render(&self) -> String {
        Json::obj(vec![
            (
                "op",
                Json::Str(match self.op {
                    JournalOp::Add => "add".into(),
                    JournalOp::Drop => "drop".into(),
                }),
            ),
            ("name", Json::Str(self.name.clone())),
            ("checksum", Json::Str(format!("{:016x}", self.checksum))),
            ("len", Json::U64(self.len)),
        ])
        .compact()
    }

    /// Parses a journal file; `None` when the journal is unreadable or
    /// malformed (fsck then discards it — the journal is written
    /// atomically, so a malformed one never describes a live operation).
    pub fn parse(bytes: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(bytes).ok()?;
        let v = json_parse(text).ok()?;
        let op = match v.get("op")?.as_str()? {
            "add" => JournalOp::Add,
            "drop" => JournalOp::Drop,
            _ => return None,
        };
        let name = v.get("name")?.as_str()?.to_owned();
        if !name.ends_with(".ldoc") {
            return None;
        }
        let checksum = u64::from_str_radix(v.get("checksum")?.as_str()?, 16).ok()?;
        let len = v.get("len")?.as_u64()?;
        Some(Self {
            op,
            name,
            checksum,
            len,
        })
    }
}

/// What [`fsck`] may change.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsckOptions {
    /// Apply repairs (journal recovery, temp sweep, quarantine). Without
    /// this, fsck only reports what it *would* do.
    pub repair: bool,
    /// Also garbage-collect cache artifacts orphaned by replaced or
    /// dropped members (requires `repair` to actually delete).
    pub gc: bool,
}

/// What [`fsck`] found (and, under [`FsckOptions::repair`], did).
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Human-readable description of the journal recovery action, if an
    /// interrupted operation was found.
    pub journal_action: Option<String>,
    /// Stray atomic-write temporaries found (removed under repair).
    pub stray_tmp: Vec<String>,
    /// Members screened beyond salvage (moved to the quarantine
    /// directory under repair).
    pub quarantined: Vec<String>,
    /// Cache artifacts not matching any live member (removed under
    /// repair + gc).
    pub orphaned: Vec<String>,
    /// Members screened, by health: (healthy, degraded).
    pub members: (usize, usize),
    /// Whether the actions above were applied (i.e. `repair` was set).
    pub repaired: bool,
}

impl FsckReport {
    /// True when fsck found nothing to do.
    pub fn is_clean(&self) -> bool {
        self.journal_action.is_none()
            && self.stray_tmp.is_empty()
            && self.quarantined.is_empty()
            && self.orphaned.is_empty()
    }
}

/// Checks — and under [`FsckOptions::repair`] restores — the store's
/// crash-consistency invariants. The recovery state machine:
///
/// 1. **Journal recovery.** A present journal means an `add`/`drop` was
///    interrupted. For an add: if the destination exists with the
///    journaled checksum the operation completed — roll *forward* (clear
///    the journal); if the destination is absent it did not — roll
///    *back* (discard the temp, clear the journal); a destination with
///    the wrong checksum (impossible under the fsync ordering, kept as
///    defense in depth) is removed with the journal. For a drop: the
///    intent is authoritative — roll forward by removing the member if
///    it still exists. A malformed journal is discarded.
/// 2. **Temp sweep.** Stray `*.tmp` atomic-write leftovers in the corpus
///    and cache directories are removed.
/// 3. **Screening.** Every member is screened; unreadable ones are moved
///    into `.quarantine/` so they stop shadowing the member namespace
///    (the salvage path already keeps degraded members usable).
/// 4. **GC** (opt-in). Per-member cache artifacts
///    (`<name>.<checksum>.<ext>`) whose (name, checksum) no longer
///    matches a live member are removed; non-member-keyed cache files
///    (e.g. the rules cache, which validates by fingerprint) are kept.
///
/// Every step is idempotent and ordered so that a crash *during* fsck is
/// itself recovered by running fsck again.
pub fn fsck(
    store: &CorpusStore,
    filter: &FilterConfig,
    jobs: usize,
    opts: FsckOptions,
) -> io::Result<FsckReport> {
    let vfs = store.vfs().clone();
    let mut report = FsckReport {
        repaired: opts.repair,
        ..FsckReport::default()
    };

    // 1. Journal recovery.
    let jpath = store.journal_path();
    if vfs.exists(&jpath) {
        let record = JournalRecord::parse(&vfs.read(&jpath)?);
        let action = match &record {
            Some(r) if r.op == JournalOp::Add => {
                let dst = store.trace_path(&r.name);
                match vfs.read(&dst) {
                    Ok(bytes) if fnv1a(&bytes) == r.checksum && bytes.len() as u64 == r.len => {
                        format!("rolled forward interrupted add of `{}`", r.name)
                    }
                    Ok(_) => {
                        if opts.repair {
                            vfs.remove_file(&dst)?;
                        }
                        format!("rolled back torn add of `{}` (checksum mismatch)", r.name)
                    }
                    Err(_) => format!("rolled back interrupted add of `{}`", r.name),
                }
            }
            Some(r) => {
                let dst = store.trace_path(&r.name);
                if vfs.exists(&dst) {
                    if opts.repair {
                        vfs.remove_file(&dst)?;
                    }
                    format!("rolled forward interrupted drop of `{}`", r.name)
                } else {
                    format!("completed interrupted drop of `{}`", r.name)
                }
            }
            None => "discarded malformed journal".to_owned(),
        };
        if opts.repair {
            vfs.fsync_dir(store.dir())?;
            vfs.remove_file(&jpath)?;
            vfs.fsync_dir(store.dir())?;
        }
        report.journal_action = Some(action);
    }

    // 2. Stray atomic-write temporaries.
    for dir in [store.dir(), store.cache_dir()] {
        for path in vfs.read_dir(dir)? {
            if is_tmp_path(&path) {
                report.stray_tmp.push(
                    path.file_name()
                        .unwrap_or_default()
                        .to_string_lossy()
                        .into(),
                );
                if opts.repair {
                    vfs.remove_file(&path)?;
                }
            }
        }
    }

    // 3. Screen members; quarantine the unreadable.
    let mut live: Vec<(String, u64)> = Vec::new();
    for name in store.trace_names()? {
        let loaded = store.load(&name, filter, jobs)?;
        match loaded.screen.health {
            Health::Unreadable => {
                report.quarantined.push(name.clone());
                if opts.repair {
                    let qdir = store.dir().join(QUARANTINE_DIR);
                    vfs.create_dir_all(&qdir)?;
                    vfs.rename(&store.trace_path(&name), &qdir.join(&name))?;
                    vfs.fsync_dir(store.dir())?;
                    vfs.fsync_dir(&qdir)?;
                }
            }
            Health::Healthy => {
                report.members.0 += 1;
                live.push((name, loaded.checksum));
            }
            Health::Degraded => {
                report.members.1 += 1;
                live.push((name, loaded.checksum));
            }
        }
    }

    // 4. Orphaned per-member cache artifacts.
    if opts.gc {
        for path in vfs.read_dir(store.cache_dir())? {
            let Some(file) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some((name, checksum)) = parse_artifact_name(file) else {
                continue; // corpus-wide cache files are not member-keyed
            };
            if !live.iter().any(|(n, c)| *n == name && *c == checksum) {
                report.orphaned.push(file.to_owned());
                if opts.repair {
                    vfs.remove_file(&path)?;
                }
            }
        }
    }

    Ok(report)
}

/// Splits a per-member artifact file name `<member>.<checksum:016x>.<ext>`
/// into its member name and checksum; `None` for any other shape.
fn parse_artifact_name(file: &str) -> Option<(String, u64)> {
    let (stem, _ext) = file.rsplit_once('.')?;
    let (name, hex) = stem.rsplit_once('.')?;
    if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let checksum = u64::from_str_radix(hex, 16).ok()?;
    if !name.ends_with(".ldoc") {
        return None;
    }
    Some((name.to_owned(), checksum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::write_trace;
    use crate::event::{AccessKind, DataTypeDef, Event, MemberDef, SourceLoc};
    use crate::ids::AllocId;
    use std::fs;

    fn toy_trace() -> Trace {
        let mut tr = Trace::new();
        let file = tr.meta_mut().strings.intern("t.c");
        let dt = tr.meta_mut().add_data_type(DataTypeDef {
            name: "obj".into(),
            size: 8,
            members: vec![MemberDef {
                name: "val".into(),
                offset: 0,
                size: 8,
                atomic: false,
                is_lock: false,
            }],
        });
        let t = tr.meta_mut().add_task("w");
        tr.push(1, Event::TaskSwitch { task: t });
        tr.push(
            2,
            Event::Alloc {
                id: AllocId(1),
                addr: 0x1000,
                size: 8,
                data_type: dt,
                subclass: None,
            },
        );
        tr.push(
            3,
            Event::MemAccess {
                kind: AccessKind::Write,
                addr: 0x1000,
                size: 8,
                loc: SourceLoc::new(file, 1),
                atomic: false,
            },
        );
        tr.push(4, Event::Free { id: AllocId(1) });
        tr
    }

    fn container() -> Vec<u8> {
        let mut buf = Vec::new();
        write_trace(&toy_trace(), &mut buf).unwrap();
        buf
    }

    #[test]
    fn store_add_list_drop_round_trip() {
        let base = std::env::temp_dir().join("lockdoc-corpus-store-test");
        fs::remove_dir_all(&base).ok();
        let store = CorpusStore::open(&base.join("corpus"), &base.join("cache")).unwrap();
        let src = base.join("b.ldoc");
        fs::write(&src, container()).unwrap();
        let src2 = base.join("a.ldoc");
        fs::write(&src2, container()).unwrap();

        assert_eq!(store.add(&src).unwrap(), "b.ldoc");
        assert_eq!(store.add(&src2).unwrap(), "a.ldoc");
        // Sorted corpus order, independent of add order.
        assert_eq!(store.trace_names().unwrap(), vec!["a.ldoc", "b.ldoc"]);
        // Double-add is refused, not silently overwritten.
        assert!(store.add(&src).is_err());
        // Non-.ldoc sources are refused.
        let other = base.join("x.bin");
        fs::write(&other, b"junk").unwrap();
        assert!(store.add(&other).is_err());

        store.drop_trace("b.ldoc").unwrap();
        assert_eq!(store.trace_names().unwrap(), vec!["a.ldoc"]);
        assert!(store.drop_trace("b.ldoc").is_err());

        // Artifact paths are keyed by name and content checksum.
        let p = store.artifact_path("a.ldoc", 0xabcd, "ldmtx");
        assert!(p
            .to_str()
            .unwrap()
            .ends_with("a.ldoc.000000000000abcd.ldmtx"));
        fs::remove_dir_all(&base).ok();
    }

    /// A store on a fresh in-memory filesystem with the given members
    /// already installed (via the journaled add path).
    fn mem_store(members: &[&str]) -> CorpusStore {
        let vfs = Vfs::mem();
        vfs.create_dir_all(Path::new("/in")).unwrap();
        let store =
            CorpusStore::open_on(vfs.clone(), Path::new("/corpus"), Path::new("/cache")).unwrap();
        for name in members {
            let src = Path::new("/in").join(name);
            vfs.write(&src, &container()).unwrap();
            store.add(&src).unwrap();
        }
        store
    }

    #[test]
    fn fsck_rolls_interrupted_adds_forward_and_back() {
        let filter = FilterConfig::with_defaults();
        let opts = FsckOptions {
            repair: true,
            gc: false,
        };

        // Completed add, journal not yet cleared -> roll forward.
        let store = mem_store(&["a.ldoc"]);
        let rec = JournalRecord {
            op: JournalOp::Add,
            name: "a.ldoc".into(),
            checksum: fnv1a(&container()),
            len: container().len() as u64,
        };
        store
            .vfs()
            .atomic_write(&store.journal_path(), rec.render().as_bytes())
            .unwrap();
        let report = fsck(&store, &filter, 1, opts).unwrap();
        assert!(report.journal_action.unwrap().contains("rolled forward"));
        assert_eq!(store.trace_names().unwrap(), vec!["a.ldoc"]);

        // Destination never landed -> roll back (journal + stray tmp go).
        let store = mem_store(&[]);
        let rec = JournalRecord {
            op: JournalOp::Add,
            name: "b.ldoc".into(),
            checksum: 1,
            len: 1,
        };
        store
            .vfs()
            .atomic_write(&store.journal_path(), rec.render().as_bytes())
            .unwrap();
        store
            .vfs()
            .write(&tmp_path(&store.trace_path("b.ldoc")), b"partial")
            .unwrap();
        let report = fsck(&store, &filter, 1, opts).unwrap();
        assert!(report.journal_action.unwrap().contains("rolled back"));
        assert_eq!(report.stray_tmp, vec!["b.ldoc.tmp"]);
        assert!(store.trace_names().unwrap().is_empty());

        // Destination present with the WRONG checksum -> defensive removal.
        let store = mem_store(&["c.ldoc"]);
        let rec = JournalRecord {
            op: JournalOp::Add,
            name: "c.ldoc".into(),
            checksum: 0xdead,
            len: 4,
        };
        store
            .vfs()
            .atomic_write(&store.journal_path(), rec.render().as_bytes())
            .unwrap();
        let report = fsck(&store, &filter, 1, opts).unwrap();
        assert!(report.journal_action.unwrap().contains("torn add"));
        assert!(store.trace_names().unwrap().is_empty());

        // Interrupted drop -> the intent wins; the member is removed.
        let store = mem_store(&["d.ldoc"]);
        let rec = JournalRecord {
            op: JournalOp::Drop,
            name: "d.ldoc".into(),
            checksum: 0,
            len: 0,
        };
        store
            .vfs()
            .atomic_write(&store.journal_path(), rec.render().as_bytes())
            .unwrap();
        let report = fsck(&store, &filter, 1, opts).unwrap();
        assert!(report.journal_action.unwrap().contains("drop"));
        assert!(store.trace_names().unwrap().is_empty());

        // Malformed journal -> discarded; fsck is then clean (idempotent).
        let store = mem_store(&["e.ldoc"]);
        store
            .vfs()
            .atomic_write(&store.journal_path(), b"{ not json")
            .unwrap();
        let report = fsck(&store, &filter, 1, opts).unwrap();
        assert_eq!(
            report.journal_action.as_deref(),
            Some("discarded malformed journal")
        );
        let again = fsck(&store, &filter, 1, opts).unwrap();
        assert!(again.is_clean(), "fsck not idempotent: {again:?}");
        assert_eq!(again.members, (1, 0));
    }

    #[test]
    fn fsck_quarantines_unreadable_and_gcs_orphans() {
        let filter = FilterConfig::with_defaults();
        let store = mem_store(&["a.ldoc"]);
        let vfs = store.vfs().clone();

        // An unreadable member (garbage container) and three cache files:
        // a live artifact, an orphaned artifact, and the rules cache.
        vfs.write(&store.trace_path("junk.ldoc"), b"not a trace")
            .unwrap();
        let live_sum = fnv1a(&container());
        vfs.write(&store.artifact_path("a.ldoc", live_sum, "ldmtx"), b"live")
            .unwrap();
        vfs.write(&store.artifact_path("a.ldoc", 0x1234, "ldmtx"), b"stale")
            .unwrap();
        vfs.write(&store.corpus_file("corpus.rules.json"), b"{}")
            .unwrap();

        // Dry run reports but changes nothing.
        let dry = fsck(
            &store,
            &filter,
            1,
            FsckOptions {
                repair: false,
                gc: true,
            },
        )
        .unwrap();
        assert_eq!(dry.quarantined, vec!["junk.ldoc"]);
        assert_eq!(dry.orphaned.len(), 1);
        assert!(!dry.repaired);
        assert_eq!(store.trace_names().unwrap().len(), 2);

        let report = fsck(
            &store,
            &filter,
            1,
            FsckOptions {
                repair: true,
                gc: true,
            },
        )
        .unwrap();
        assert_eq!(report.quarantined, vec!["junk.ldoc"]);
        assert_eq!(report.orphaned.len(), 1);
        assert!(report.orphaned[0].contains("0000000000001234"));
        assert_eq!(store.trace_names().unwrap(), vec!["a.ldoc"]);
        assert!(vfs.exists(&store.dir().join(QUARANTINE_DIR).join("junk.ldoc")));
        assert!(vfs.exists(&store.artifact_path("a.ldoc", live_sum, "ldmtx")));
        assert!(!vfs.exists(&store.artifact_path("a.ldoc", 0x1234, "ldmtx")));
        assert!(vfs.exists(&store.corpus_file("corpus.rules.json")));

        let again = fsck(
            &store,
            &filter,
            1,
            FsckOptions {
                repair: true,
                gc: true,
            },
        )
        .unwrap();
        assert!(again.is_clean(), "fsck not idempotent: {again:?}");
    }

    #[test]
    fn journal_records_round_trip_and_reject_garbage() {
        let rec = JournalRecord {
            op: JournalOp::Add,
            name: "x.ldoc".into(),
            checksum: 0xfeed_beef_dead_cafe,
            len: 42,
        };
        assert_eq!(JournalRecord::parse(rec.render().as_bytes()), Some(rec));
        let drop = JournalRecord {
            op: JournalOp::Drop,
            name: "y.ldoc".into(),
            checksum: 0,
            len: 0,
        };
        assert_eq!(JournalRecord::parse(drop.render().as_bytes()), Some(drop));
        assert_eq!(JournalRecord::parse(b"{}"), None);
        assert_eq!(JournalRecord::parse(b"\xff\xfe"), None);
        assert_eq!(
            JournalRecord::parse(br#"{"op":"add","name":"no-suffix","checksum":"0","len":0}"#),
            None
        );
    }

    #[test]
    fn artifact_names_parse_only_member_keyed_files() {
        assert_eq!(
            parse_artifact_name("a.ldoc.000000000000abcd.ldmtx"),
            Some(("a.ldoc".to_owned(), 0xabcd))
        );
        assert_eq!(parse_artifact_name("corpus.rules.json"), None);
        assert_eq!(parse_artifact_name("a.ldoc.xyz.ldmtx"), None);
        assert_eq!(parse_artifact_name("a.ldoc.0000000000abcd.ldmtx"), None);
    }

    #[test]
    fn screening_grades_healthy_degraded_unreadable() {
        let filter = FilterConfig::with_defaults();
        let good = container();

        let (trace, screen) = screen_trace(&good, &filter, 1);
        assert_eq!(screen.health, Health::Healthy);
        assert_eq!(trace.unwrap().events.len(), 4);

        // Clipping the tail degrades but still yields the salvaged prefix.
        let (trace, screen) = screen_trace(&good[..good.len() - 1], &filter, 1);
        assert_eq!(screen.health, Health::Degraded);
        assert!(screen.salvage.unwrap().truncated);
        assert!(trace.is_some());

        // Garbage is unreadable: no trace, a decode error instead.
        let (trace, screen) = screen_trace(b"not a trace", &filter, 1);
        assert_eq!(screen.health, Health::Unreadable);
        assert!(trace.is_none());
        assert!(screen.error.is_some());
        assert_eq!(screen.health.name(), "unreadable");
    }

    #[test]
    fn screening_sanitizes_quarantined_events() {
        // A structurally valid container whose event stream references a
        // dangling allocation id: the importer quarantines the Free, and
        // the sanitized trace must no longer contain it.
        let mut tr = toy_trace();
        tr.push(5, Event::Free { id: AllocId(99) });
        let mut buf = Vec::new();
        write_trace(&tr, &mut buf).unwrap();
        let (trace, screen) = screen_trace(&buf, &FilterConfig::with_defaults(), 1);
        assert_eq!(screen.health, Health::Degraded);
        let report = screen.import.unwrap();
        assert_eq!(report.quarantined.len(), 1);
        let trace = trace.unwrap();
        assert_eq!(trace.events.len(), 4, "quarantined event stripped");
        // Re-screening the sanitized stream is clean: sanitization is a
        // fixed point, so every consumer sees the same events.
        let mut clean = Vec::new();
        write_trace(&trace, &mut clean).unwrap();
        let (_, screen) = screen_trace(&clean, &FilterConfig::with_defaults(), 1);
        assert_eq!(screen.health, Health::Healthy);
    }
}
