//! The `lockdoc` command-line entry point. See [`lockdoc_cli::USAGE`].

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lockdoc_cli::run(&args) {
        Ok(report) => {
            // Tolerate a closed pipe (e.g. `lockdoc derive | head`).
            let mut stdout = std::io::stdout().lock();
            let _ = writeln!(stdout, "{report}");
            let _ = stdout.flush();
            ExitCode::SUCCESS
        }
        Err(e) => {
            let mut stderr = std::io::stderr().lock();
            let _ = writeln!(stderr, "{e}");
            ExitCode::FAILURE
        }
    }
}
