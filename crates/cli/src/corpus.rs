//! `lockdoc corpus`: manage a directory of traces as one analysis unit.
//!
//! The corpus pipeline caches two artifacts per member trace under the
//! cache directory, each keyed by the member's content checksum (plus,
//! for the matrix, the filter and derive-config fingerprints):
//!
//! * `<name>.<checksum>.screen.json` — the screening verdict (health,
//!   event counts), so `status` and warm rebuilds never re-decode a
//!   container whose content they have already triaged;
//! * `<name>.<checksum>.ldmtx` — the per-trace observation matrix, so a
//!   warm `build` merges cached matrices without touching the event
//!   stream at all.
//!
//! Corpus-level rules are derived group by group from the merged
//! matrices; the rules cache (`corpus.rules.json`) lets an incremental
//! `add`/`drop` re-derive only the groups whose contributor set actually
//! changed — untouched groups are reused byte-identically. Any
//! mismatched, truncated, or damaged artifact is a clean cache miss: the
//! pipeline falls back to a full decode, never a wrong answer.

use crate::{render_rules_text, Args, CliError, Result};
use ksim::rules;
use lockdoc_core::corpus::derive_fingerprint;
use lockdoc_core::derive::DeriveConfig;
use lockdoc_core::{
    build_trace_matrix, derive_corpus, read_matrix_artifact, write_matrix_artifact, CorpusDerive,
    CorpusRulesCache, CorpusTrace, TraceMatrix,
};
use lockdoc_platform::json::{self, Json, ToJson};
use lockdoc_trace::codec::{write_trace, TraceReader};
use lockdoc_trace::corpus::{screen_trace, CorpusStore, Health};
use lockdoc_trace::db::{filter_fingerprint, fnv1a, import};
use lockdoc_trace::event::{Trace, TraceMeta};
use lockdoc_trace::filter::FilterConfig;
use lockdoc_trace::merge::{concat_traces_corpus, corpus_meta};
use std::fs;
use std::path::{Path, PathBuf};

/// File name of the corpus-level rules cache inside the cache directory.
pub const RULES_CACHE_FILE: &str = "corpus.rules.json";

/// Shared knobs of one corpus (or serve) invocation.
pub(crate) struct CorpusCtx {
    pub store: CorpusStore,
    pub config: DeriveConfig,
    pub filter: FilterConfig,
    pub filter_fp: u64,
    pub derive_fp: u64,
    pub jobs: usize,
}

impl CorpusCtx {
    /// Resolves `--dir`, `--cache-dir` (default `<dir>/.lockdoc-cache`),
    /// `--t-ac`, and `--jobs` into an opened store plus fingerprints.
    pub(crate) fn from_args(args: &Args) -> Result<Self> {
        let dir = args
            .get("dir")
            .ok_or_else(|| CliError::Usage("--dir DIR is required".into()))?;
        let cache_dir: PathBuf = match args.get("cache-dir") {
            Some(c) => PathBuf::from(c),
            None => Path::new(dir).join(".lockdoc-cache"),
        };
        let store = CorpusStore::open(Path::new(dir), &cache_dir)?;
        let t_ac: f64 = args.num("t-ac", 0.9f64)?;
        let config = DeriveConfig::with_threshold(t_ac);
        let filter = rules::filter_config();
        let filter_fp = filter_fingerprint(&filter);
        let derive_fp = derive_fingerprint(&config);
        Ok(Self {
            store,
            config,
            filter,
            filter_fp,
            derive_fp,
            jobs: args.jobs()?,
        })
    }
}

/// One corpus member as the CLI sees it after loading.
pub(crate) struct Member {
    pub name: String,
    pub checksum: u64,
    pub health: Health,
    pub events: u64,
    pub quarantined: u64,
    pub error: Option<String>,
    /// True when the member was served entirely from cached artifacts
    /// (no event decode happened).
    pub cached: bool,
    pub matrix: Option<TraceMatrix>,
    pub meta: Option<TraceMeta>,
    pub trace: Option<Trace>,
}

/// What `load_corpus` must materialize per member.
pub(crate) struct LoadOpts {
    /// Build (or warm-load) the observation matrix.
    pub need_matrix: bool,
    /// Keep the full sanitized trace (forces the cold path).
    pub need_trace: bool,
}

fn write_screen_sidecar(path: &Path, m: &Member) {
    let mut pairs = vec![
        ("health", Json::Str(m.health.name().to_owned())),
        ("events", Json::U64(m.events)),
        ("quarantined", Json::U64(m.quarantined)),
    ];
    if let Some(e) = &m.error {
        pairs.push(("error", Json::Str(e.clone())));
    }
    // Best-effort: a failed cache write only costs the next run a rescan.
    let _ = fs::write(path, Json::obj(pairs).pretty());
}

fn read_screen_sidecar(path: &Path) -> Option<(Health, u64, u64, Option<String>)> {
    let v = json::parse(&fs::read_to_string(path).ok()?).ok()?;
    let health = match v.get("health").and_then(Json::as_str)? {
        "healthy" => Health::Healthy,
        "degraded" => Health::Degraded,
        "unreadable" => Health::Unreadable,
        _ => return None,
    };
    Some((
        health,
        v.get("events").and_then(Json::as_u64)?,
        v.get("quarantined").and_then(Json::as_u64)?,
        v.get("error").and_then(Json::as_str).map(str::to_owned),
    ))
}

fn load_member(ctx: &CorpusCtx, name: &str, opts: &LoadOpts) -> Result<Member> {
    let bytes = fs::read(ctx.store.trace_path(name))?;
    let checksum = fnv1a(&bytes);
    let scr_path = ctx.store.artifact_path(name, checksum, "screen.json");
    let mtx_path = ctx.store.artifact_path(name, checksum, "ldmtx");
    let mut member = Member {
        name: name.to_owned(),
        checksum,
        health: Health::Unreadable,
        events: 0,
        quarantined: 0,
        error: None,
        cached: false,
        matrix: None,
        meta: None,
        trace: None,
    };
    // Warm path: a content-matched screening verdict (and, when needed, a
    // content+config-matched matrix) lets us skip the event decode.
    if !opts.need_trace {
        if let Some((health, events, quarantined, error)) = read_screen_sidecar(&scr_path) {
            member.health = health;
            member.events = events;
            member.quarantined = quarantined;
            member.error = error;
            if health == Health::Unreadable || !opts.need_matrix {
                member.cached = true;
                return Ok(member);
            }
            if let Ok(mbytes) = fs::read(&mtx_path) {
                if let Some(matrix) =
                    read_matrix_artifact(&mbytes, checksum, ctx.filter_fp, ctx.derive_fp)
                {
                    // The header decodes on its own for every non-unreadable
                    // member; a failure here just falls through to cold.
                    if let Ok(reader) = TraceReader::new(bytes.as_slice()) {
                        member.meta = Some((**reader.meta()).clone());
                        member.matrix = Some(matrix);
                        member.cached = true;
                        return Ok(member);
                    }
                }
            }
        }
    }
    // Cold path: screen (salvage + quarantine + sanitize), then rebuild
    // the cached artifacts for the next run.
    let (trace, screen) = screen_trace(&bytes, &ctx.filter, ctx.jobs);
    if let Some(r) = &screen.import {
        member.events = r.events;
        member.quarantined = r.quarantined.len() as u64;
    }
    member.health = screen.health;
    member.error = screen.error;
    write_screen_sidecar(&scr_path, &member);
    let Some(trace) = trace else {
        return Ok(member);
    };
    member.meta = Some((*trace.meta).clone());
    if opts.need_matrix {
        let db = import(&trace, &ctx.filter, ctx.jobs);
        let matrix = build_trace_matrix(&db, ctx.jobs);
        let _ = fs::write(
            &mtx_path,
            write_matrix_artifact(&matrix, checksum, ctx.filter_fp, ctx.derive_fp),
        );
        member.matrix = Some(matrix);
    }
    if opts.need_trace {
        member.trace = Some(trace);
    }
    Ok(member)
}

/// Loads every corpus member in corpus (sorted-name) order.
pub(crate) fn load_corpus(ctx: &CorpusCtx, opts: &LoadOpts) -> Result<Vec<Member>> {
    ctx.store
        .trace_names()?
        .iter()
        .map(|n| load_member(ctx, n, opts))
        .collect()
}

/// Merges the members' matrices and derives corpus-level rules,
/// reusing cached group results where the contributor set is unchanged.
/// The refreshed rules cache is persisted for the next run.
pub(crate) fn derive_members(ctx: &CorpusCtx, members: &[Member]) -> Result<CorpusDerive> {
    let metas: Vec<TraceMeta> = members.iter().filter_map(|m| m.meta.clone()).collect();
    let meta = corpus_meta(&metas).map_err(|e| CliError::Usage(format!("corpus merge: {e}")))?;
    let traces: Vec<CorpusTrace> = members
        .iter()
        .filter_map(|m| {
            m.matrix.clone().map(|matrix| CorpusTrace {
                checksum: m.checksum,
                matrix,
            })
        })
        .collect();
    let cache_path = ctx.store.corpus_file(RULES_CACHE_FILE);
    let prev: Option<CorpusRulesCache> = fs::read_to_string(&cache_path)
        .ok()
        .and_then(|s| json::from_str(&s).ok());
    let derived = derive_corpus(
        &traces,
        &meta,
        &ctx.config,
        ctx.filter_fp,
        ctx.jobs,
        prev.as_ref(),
    );
    let _ = fs::write(&cache_path, json::to_string_pretty(&derived.cache));
    Ok(derived)
}

fn health_counts(members: &[Member]) -> (usize, usize, usize) {
    let count = |h: Health| members.iter().filter(|m| m.health == h).count();
    (
        count(Health::Healthy),
        count(Health::Degraded),
        count(Health::Unreadable),
    )
}

/// One-line corpus health summary.
pub(crate) fn corpus_summary(members: &[Member]) -> String {
    let (h, d, u) = health_counts(members);
    format!(
        "corpus: {} trace(s) — {h} healthy, {d} degraded, {u} unreadable",
        members.len()
    )
}

fn member_json(m: &Member) -> Json {
    let mut pairs = vec![
        ("name", Json::Str(m.name.clone())),
        ("checksum", Json::Str(format!("{:016x}", m.checksum))),
        ("health", Json::Str(m.health.name().to_owned())),
        ("events", Json::U64(m.events)),
        ("quarantined", Json::U64(m.quarantined)),
        ("cached", Json::Bool(m.cached)),
    ];
    if let Some(e) = &m.error {
        pairs.push(("error", Json::Str(e.clone())));
    }
    Json::obj(pairs)
}

fn build_report(ctx: &CorpusCtx, args: &Args, prefix: String) -> Result<String> {
    let members = load_corpus(
        ctx,
        &LoadOpts {
            need_matrix: true,
            need_trace: false,
        },
    )?;
    if members.iter().all(|m| m.matrix.is_none()) {
        return Err(CliError::Usage(
            "corpus has no analyzable traces (add .ldoc files first)".into(),
        ));
    }
    let derived = derive_members(ctx, &members)?;
    if args.has("json") {
        let v = Json::obj(vec![
            (
                "members",
                Json::Arr(members.iter().map(member_json).collect()),
            ),
            ("groups_total", Json::U64(derived.groups_total as u64)),
            ("groups_reused", Json::U64(derived.groups_reused as u64)),
            ("rules", derived.rules.to_json()),
        ]);
        return Ok(v.pretty());
    }
    let cached = members.iter().filter(|m| m.cached).count();
    let mut out = prefix;
    out.push_str(&corpus_summary(&members));
    out.push('\n');
    out.push_str(&format!(
        "matrices: {cached} cached, {} rebuilt\n",
        members.len() - cached
    ));
    out.push_str(&format!(
        "groups: {} total, {} reused, {} re-derived\n",
        derived.groups_total,
        derived.groups_reused,
        derived.groups_total - derived.groups_reused
    ));
    out.push_str(&render_rules_text(&derived.rules, args.has("rulespec")));
    Ok(out)
}

fn status_report(ctx: &CorpusCtx, args: &Args) -> Result<String> {
    let members = load_corpus(
        ctx,
        &LoadOpts {
            need_matrix: false,
            need_trace: false,
        },
    )?;
    if args.has("json") {
        let (h, d, u) = health_counts(&members);
        let v = Json::obj(vec![
            (
                "members",
                Json::Arr(members.iter().map(member_json).collect()),
            ),
            ("healthy", Json::U64(h as u64)),
            ("degraded", Json::U64(d as u64)),
            ("unreadable", Json::U64(u as u64)),
        ]);
        return Ok(v.pretty());
    }
    let mut out = String::new();
    for m in &members {
        out.push_str(&render_triage_line(
            &m.name,
            m.health,
            m.events,
            m.quarantined,
            m.error.as_deref(),
        ));
    }
    out.push_str(&corpus_summary(&members));
    out.push('\n');
    Ok(out)
}

/// One `name: VERDICT — detail` triage line (shared with `doctor DIR`).
pub(crate) fn render_triage_line(
    name: &str,
    health: Health,
    events: u64,
    quarantined: u64,
    error: Option<&str>,
) -> String {
    match health {
        Health::Unreadable => format!(
            "{name}: UNREADABLE — {}\n",
            error.unwrap_or("undecodable header")
        ),
        h => format!(
            "{name}: {} — {events} events, {quarantined} quarantined\n",
            h.name().to_uppercase()
        ),
    }
}

fn export_report(ctx: &CorpusCtx, args: &Args) -> Result<String> {
    let out_path = args
        .get("out")
        .ok_or_else(|| CliError::Usage("--out FILE is required".into()))?;
    let mut members = load_corpus(
        ctx,
        &LoadOpts {
            need_matrix: false,
            need_trace: true,
        },
    )?;
    let traces: Vec<Trace> = members.iter_mut().filter_map(|m| m.trace.take()).collect();
    if traces.is_empty() {
        return Err(CliError::Usage(
            "corpus has no analyzable traces (add .ldoc files first)".into(),
        ));
    }
    let parts = traces.len();
    let merged =
        concat_traces_corpus(traces).map_err(|e| CliError::Usage(format!("corpus merge: {e}")))?;
    let mut buf = Vec::new();
    write_trace(&merged, &mut buf)?;
    fs::write(out_path, &buf)?;
    Ok(format!(
        "wrote {out_path}: {} events merged from {parts} trace(s), {} bytes\n",
        merged.events.len(),
        buf.len()
    ))
}

/// `lockdoc corpus`: build | add FILE.. | drop NAME.. | status | export.
pub fn cmd_corpus(args: &Args) -> Result<String> {
    let sub = args.positional.first().map(String::as_str).ok_or_else(|| {
        CliError::Usage(
            "corpus needs a subcommand: build | add FILE.. | drop NAME.. | status | export".into(),
        )
    })?;
    let ctx = CorpusCtx::from_args(args)?;
    match sub {
        "build" => build_report(&ctx, args, String::new()),
        "add" => {
            let files = &args.positional[1..];
            if files.is_empty() {
                return Err(CliError::Usage(
                    "corpus add needs at least one TRACE file".into(),
                ));
            }
            let mut prefix = String::new();
            for f in files {
                let name = ctx.store.add(Path::new(f))?;
                prefix.push_str(&format!("added {name}\n"));
            }
            build_report(&ctx, args, prefix)
        }
        "drop" => {
            let names = &args.positional[1..];
            if names.is_empty() {
                return Err(CliError::Usage(
                    "corpus drop needs at least one member NAME".into(),
                ));
            }
            let mut prefix = String::new();
            for n in names {
                ctx.store.drop_trace(n)?;
                prefix.push_str(&format!("dropped {n}\n"));
            }
            build_report(&ctx, args, prefix)
        }
        "status" => status_report(&ctx, args),
        "export" => export_report(&ctx, args),
        other => Err(CliError::Usage(format!(
            "unknown corpus subcommand `{other}` (expected build | add | drop | status | export)"
        ))),
    }
}
