//! `lockdoc corpus`: manage a directory of traces as one analysis unit.
//!
//! The corpus pipeline caches two artifacts per member trace under the
//! cache directory, each keyed by the member's content checksum (plus,
//! for the matrix, the filter and derive-config fingerprints):
//!
//! * `<name>.<checksum>.screen.json` — the screening verdict (health,
//!   event counts), so `status` and warm rebuilds never re-decode a
//!   container whose content they have already triaged;
//! * `<name>.<checksum>.ldmtx` — the per-trace observation matrix, so a
//!   warm `build` merges cached matrices without touching the event
//!   stream at all.
//!
//! Corpus-level rules are derived group by group from the merged
//! matrices; the rules cache (`corpus.rules.json`) lets an incremental
//! `add`/`drop` re-derive only the groups whose contributor set actually
//! changed — untouched groups are reused byte-identically. Any
//! mismatched, truncated, or damaged artifact is a clean cache miss: the
//! pipeline falls back to a full decode, never a wrong answer.

use crate::{render_rules_text, Args, CliError, Result};
use ksim::rules;
use lockdoc_core::corpus::derive_fingerprint;
use lockdoc_core::derive::DeriveConfig;
use lockdoc_core::{
    build_trace_matrix, derive_corpus, read_matrix_artifact, write_matrix_artifact, CorpusDerive,
    CorpusRulesCache, CorpusTrace, TraceMatrix,
};
use lockdoc_platform::json::{self, Json, ToJson};
use lockdoc_trace::codec::{write_trace, TraceReader};
use lockdoc_trace::corpus::{fsck as store_fsck, screen_trace, CorpusStore, FsckOptions, Health};
use lockdoc_trace::db::{filter_fingerprint, fnv1a, import};
use lockdoc_trace::event::{Trace, TraceMeta};
use lockdoc_trace::filter::FilterConfig;
use lockdoc_trace::merge::{concat_traces_corpus, corpus_meta};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File name of the corpus-level rules cache inside the cache directory.
pub const RULES_CACHE_FILE: &str = "corpus.rules.json";

/// Shared knobs of one corpus (or serve) invocation.
///
/// Public so the crash-consistency suite (`tests/crash.rs`) can drive
/// the exact corpus pipeline the CLI runs against an in-memory
/// fault-injecting filesystem.
pub struct CorpusCtx {
    /// The opened store (which owns the filesystem handle all
    /// persistence must go through).
    pub store: CorpusStore,
    /// Rule-derivation configuration.
    pub config: DeriveConfig,
    /// Event filter configuration.
    pub filter: FilterConfig,
    /// Fingerprint of `filter` (cache key component).
    pub filter_fp: u64,
    /// Fingerprint of `config` (cache key component).
    pub derive_fp: u64,
    /// Worker count for parallel stages.
    pub jobs: usize,
    /// Cache writes that failed this process. Cache persistence stays
    /// best-effort — a failed write only costs the next run a rebuild —
    /// but failures are counted and surfaced in `corpus status` / serve
    /// `status` instead of vanishing.
    pub cache_write_errors: AtomicU64,
}

impl CorpusCtx {
    /// Resolves `--dir`, `--cache-dir` (default `<dir>/.lockdoc-cache`),
    /// `--t-ac`, and `--jobs` into an opened store plus fingerprints.
    pub(crate) fn from_args(args: &Args) -> Result<Self> {
        let dir = args
            .get("dir")
            .ok_or_else(|| CliError::Usage("--dir DIR is required".into()))?;
        let cache_dir: PathBuf = match args.get("cache-dir") {
            Some(c) => PathBuf::from(c),
            None => Path::new(dir).join(".lockdoc-cache"),
        };
        let store = CorpusStore::open(Path::new(dir), &cache_dir)?;
        Ok(Self::with_store(
            store,
            args.num("t-ac", 0.9f64)?,
            args.jobs()?,
        ))
    }

    /// Wraps an already-opened store (possibly on an in-memory
    /// [`lockdoc_platform::vfs::Vfs`]) with default analysis knobs.
    pub fn with_store(store: CorpusStore, t_ac: f64, jobs: usize) -> Self {
        let config = DeriveConfig::with_threshold(t_ac);
        let filter = rules::filter_config();
        let filter_fp = filter_fingerprint(&filter);
        let derive_fp = derive_fingerprint(&config);
        Self {
            store,
            config,
            filter,
            filter_fp,
            derive_fp,
            jobs,
            cache_write_errors: AtomicU64::new(0),
        }
    }

    /// Best-effort durable cache write: atomic (temp + rename + fsync)
    /// so a cache file is never torn, counting — not propagating —
    /// failures.
    fn write_cache(&self, path: &Path, bytes: &[u8]) {
        if self.store.vfs().atomic_write(path, bytes).is_err() {
            self.cache_write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cache writes that failed so far in this process.
    pub fn cache_write_errors(&self) -> u64 {
        self.cache_write_errors.load(Ordering::Relaxed)
    }
}

/// One corpus member as the CLI sees it after loading.
pub struct Member {
    /// Member file name.
    pub name: String,
    /// FNV-1a over the container bytes (artifact cache key).
    pub checksum: u64,
    /// Screening verdict.
    pub health: Health,
    /// Imported event count.
    pub events: u64,
    /// Quarantined event count.
    pub quarantined: u64,
    /// Decode error for unreadable members.
    pub error: Option<String>,
    /// True when the member was served entirely from cached artifacts
    /// (no event decode happened).
    pub cached: bool,
    /// The observation matrix (when requested).
    pub matrix: Option<TraceMatrix>,
    /// The trace metadata (when available).
    pub meta: Option<TraceMeta>,
    /// The full sanitized trace (when requested).
    pub trace: Option<Trace>,
}

/// What [`load_corpus`] must materialize per member.
pub struct LoadOpts {
    /// Build (or warm-load) the observation matrix.
    pub need_matrix: bool,
    /// Keep the full sanitized trace (forces the cold path).
    pub need_trace: bool,
}

fn write_screen_sidecar(ctx: &CorpusCtx, path: &Path, m: &Member) {
    let mut pairs = vec![
        ("health", Json::Str(m.health.name().to_owned())),
        ("events", Json::U64(m.events)),
        ("quarantined", Json::U64(m.quarantined)),
    ];
    if let Some(e) = &m.error {
        pairs.push(("error", Json::Str(e.clone())));
    }
    // Best-effort: a failed cache write only costs the next run a rescan.
    ctx.write_cache(path, Json::obj(pairs).pretty().as_bytes());
}

fn read_screen_sidecar(ctx: &CorpusCtx, path: &Path) -> Option<(Health, u64, u64, Option<String>)> {
    let bytes = ctx.store.vfs().read(path).ok()?;
    let v = json::parse(std::str::from_utf8(&bytes).ok()?).ok()?;
    let health = match v.get("health").and_then(Json::as_str)? {
        "healthy" => Health::Healthy,
        "degraded" => Health::Degraded,
        "unreadable" => Health::Unreadable,
        _ => return None,
    };
    Some((
        health,
        v.get("events").and_then(Json::as_u64)?,
        v.get("quarantined").and_then(Json::as_u64)?,
        v.get("error").and_then(Json::as_str).map(str::to_owned),
    ))
}

fn load_member(ctx: &CorpusCtx, name: &str, opts: &LoadOpts) -> Result<Member> {
    let bytes = ctx.store.vfs().read(&ctx.store.trace_path(name))?;
    let checksum = fnv1a(&bytes);
    let scr_path = ctx.store.artifact_path(name, checksum, "screen.json");
    let mtx_path = ctx.store.artifact_path(name, checksum, "ldmtx");
    let mut member = Member {
        name: name.to_owned(),
        checksum,
        health: Health::Unreadable,
        events: 0,
        quarantined: 0,
        error: None,
        cached: false,
        matrix: None,
        meta: None,
        trace: None,
    };
    // Warm path: a content-matched screening verdict (and, when needed, a
    // content+config-matched matrix) lets us skip the event decode.
    if !opts.need_trace {
        if let Some((health, events, quarantined, error)) = read_screen_sidecar(ctx, &scr_path) {
            member.health = health;
            member.events = events;
            member.quarantined = quarantined;
            member.error = error;
            if health == Health::Unreadable || !opts.need_matrix {
                member.cached = true;
                return Ok(member);
            }
            if let Ok(mbytes) = ctx.store.vfs().read(&mtx_path) {
                if let Some(matrix) =
                    read_matrix_artifact(&mbytes, checksum, ctx.filter_fp, ctx.derive_fp)
                {
                    // The header decodes on its own for every non-unreadable
                    // member; a failure here just falls through to cold.
                    if let Ok(reader) = TraceReader::new(bytes.as_slice()) {
                        member.meta = Some((**reader.meta()).clone());
                        member.matrix = Some(matrix);
                        member.cached = true;
                        return Ok(member);
                    }
                }
            }
        }
    }
    // Cold path: screen (salvage + quarantine + sanitize), then rebuild
    // the cached artifacts for the next run.
    let (trace, screen) = screen_trace(&bytes, &ctx.filter, ctx.jobs);
    if let Some(r) = &screen.import {
        member.events = r.events;
        member.quarantined = r.quarantined.len() as u64;
    }
    member.health = screen.health;
    member.error = screen.error;
    write_screen_sidecar(ctx, &scr_path, &member);
    let Some(trace) = trace else {
        return Ok(member);
    };
    member.meta = Some((*trace.meta).clone());
    if opts.need_matrix {
        let db = import(&trace, &ctx.filter, ctx.jobs);
        let matrix = build_trace_matrix(&db, ctx.jobs);
        ctx.write_cache(
            &mtx_path,
            &write_matrix_artifact(&matrix, checksum, ctx.filter_fp, ctx.derive_fp),
        );
        member.matrix = Some(matrix);
    }
    if opts.need_trace {
        member.trace = Some(trace);
    }
    Ok(member)
}

/// Loads every corpus member in corpus (sorted-name) order.
pub fn load_corpus(ctx: &CorpusCtx, opts: &LoadOpts) -> Result<Vec<Member>> {
    ctx.store
        .trace_names()?
        .iter()
        .map(|n| load_member(ctx, n, opts))
        .collect()
}

/// Merges the members' matrices and derives corpus-level rules,
/// reusing cached group results where the contributor set is unchanged.
/// The refreshed rules cache is persisted for the next run.
pub fn derive_members(ctx: &CorpusCtx, members: &[Member]) -> Result<CorpusDerive> {
    let metas: Vec<TraceMeta> = members.iter().filter_map(|m| m.meta.clone()).collect();
    let meta = corpus_meta(&metas).map_err(|e| CliError::Usage(format!("corpus merge: {e}")))?;
    let traces: Vec<CorpusTrace> = members
        .iter()
        .filter_map(|m| {
            m.matrix.clone().map(|matrix| CorpusTrace {
                checksum: m.checksum,
                matrix,
            })
        })
        .collect();
    let cache_path = ctx.store.corpus_file(RULES_CACHE_FILE);
    let prev: Option<CorpusRulesCache> = ctx
        .store
        .vfs()
        .read(&cache_path)
        .ok()
        .and_then(|b| String::from_utf8(b).ok())
        .and_then(|s| json::from_str(&s).ok());
    let derived = derive_corpus(
        &traces,
        &meta,
        &ctx.config,
        ctx.filter_fp,
        ctx.jobs,
        prev.as_ref(),
    );
    ctx.write_cache(
        &cache_path,
        json::to_string_pretty(&derived.cache).as_bytes(),
    );
    Ok(derived)
}

fn health_counts(members: &[Member]) -> (usize, usize, usize) {
    let count = |h: Health| members.iter().filter(|m| m.health == h).count();
    (
        count(Health::Healthy),
        count(Health::Degraded),
        count(Health::Unreadable),
    )
}

/// One-line corpus health summary.
pub(crate) fn corpus_summary(members: &[Member]) -> String {
    let (h, d, u) = health_counts(members);
    format!(
        "corpus: {} trace(s) — {h} healthy, {d} degraded, {u} unreadable",
        members.len()
    )
}

fn member_json(m: &Member) -> Json {
    let mut pairs = vec![
        ("name", Json::Str(m.name.clone())),
        ("checksum", Json::Str(format!("{:016x}", m.checksum))),
        ("health", Json::Str(m.health.name().to_owned())),
        ("events", Json::U64(m.events)),
        ("quarantined", Json::U64(m.quarantined)),
        ("cached", Json::Bool(m.cached)),
    ];
    if let Some(e) = &m.error {
        pairs.push(("error", Json::Str(e.clone())));
    }
    Json::obj(pairs)
}

fn build_report(ctx: &CorpusCtx, args: &Args, prefix: String) -> Result<String> {
    let members = load_corpus(
        ctx,
        &LoadOpts {
            need_matrix: true,
            need_trace: false,
        },
    )?;
    if members.iter().all(|m| m.matrix.is_none()) {
        return Err(CliError::Usage(
            "corpus has no analyzable traces (add .ldoc files first)".into(),
        ));
    }
    let derived = derive_members(ctx, &members)?;
    if args.has("json") {
        let v = Json::obj(vec![
            (
                "members",
                Json::Arr(members.iter().map(member_json).collect()),
            ),
            ("groups_total", Json::U64(derived.groups_total as u64)),
            ("groups_reused", Json::U64(derived.groups_reused as u64)),
            ("rules", derived.rules.to_json()),
        ]);
        return Ok(v.pretty());
    }
    let cached = members.iter().filter(|m| m.cached).count();
    let mut out = prefix;
    out.push_str(&corpus_summary(&members));
    out.push('\n');
    out.push_str(&format!(
        "matrices: {cached} cached, {} rebuilt\n",
        members.len() - cached
    ));
    out.push_str(&format!(
        "groups: {} total, {} reused, {} re-derived\n",
        derived.groups_total,
        derived.groups_reused,
        derived.groups_total - derived.groups_reused
    ));
    out.push_str(&render_rules_text(&derived.rules, args.has("rulespec")));
    Ok(out)
}

fn status_report(ctx: &CorpusCtx, args: &Args) -> Result<String> {
    let members = load_corpus(
        ctx,
        &LoadOpts {
            need_matrix: false,
            need_trace: false,
        },
    )?;
    if args.has("json") {
        let (h, d, u) = health_counts(&members);
        let v = Json::obj(vec![
            (
                "members",
                Json::Arr(members.iter().map(member_json).collect()),
            ),
            ("healthy", Json::U64(h as u64)),
            ("degraded", Json::U64(d as u64)),
            ("unreadable", Json::U64(u as u64)),
            ("cache_write_errors", Json::U64(ctx.cache_write_errors())),
        ]);
        return Ok(v.pretty());
    }
    let mut out = String::new();
    for m in &members {
        out.push_str(&render_triage_line(
            &m.name,
            m.health,
            m.events,
            m.quarantined,
            m.error.as_deref(),
        ));
    }
    out.push_str(&corpus_summary(&members));
    out.push('\n');
    out.push_str(&format!(
        "cache write errors: {}\n",
        ctx.cache_write_errors()
    ));
    Ok(out)
}

/// One `name: VERDICT — detail` triage line (shared with `doctor DIR`).
pub(crate) fn render_triage_line(
    name: &str,
    health: Health,
    events: u64,
    quarantined: u64,
    error: Option<&str>,
) -> String {
    match health {
        Health::Unreadable => format!(
            "{name}: UNREADABLE — {}\n",
            error.unwrap_or("undecodable header")
        ),
        h => format!(
            "{name}: {} — {events} events, {quarantined} quarantined\n",
            h.name().to_uppercase()
        ),
    }
}

fn export_report(ctx: &CorpusCtx, args: &Args) -> Result<String> {
    let out_path = args
        .get("out")
        .ok_or_else(|| CliError::Usage("--out FILE is required".into()))?;
    let mut members = load_corpus(
        ctx,
        &LoadOpts {
            need_matrix: false,
            need_trace: true,
        },
    )?;
    let traces: Vec<Trace> = members.iter_mut().filter_map(|m| m.trace.take()).collect();
    if traces.is_empty() {
        return Err(CliError::Usage(
            "corpus has no analyzable traces (add .ldoc files first)".into(),
        ));
    }
    let parts = traces.len();
    let merged =
        concat_traces_corpus(traces).map_err(|e| CliError::Usage(format!("corpus merge: {e}")))?;
    let mut buf = Vec::new();
    write_trace(&merged, &mut buf)?;
    fs::write(out_path, &buf)?;
    Ok(format!(
        "wrote {out_path}: {} events merged from {parts} trace(s), {} bytes\n",
        merged.events.len(),
        buf.len()
    ))
}

/// `lockdoc corpus`: build | add FILE.. | drop NAME.. | status | export.
pub fn cmd_corpus(args: &Args) -> Result<String> {
    let sub = args.positional.first().map(String::as_str).ok_or_else(|| {
        CliError::Usage(
            "corpus needs a subcommand: build | add FILE.. | drop NAME.. | status | export".into(),
        )
    })?;
    let ctx = CorpusCtx::from_args(args)?;
    match sub {
        "build" => build_report(&ctx, args, String::new()),
        "add" => {
            let files = &args.positional[1..];
            if files.is_empty() {
                return Err(CliError::Usage(
                    "corpus add needs at least one TRACE file".into(),
                ));
            }
            let mut prefix = String::new();
            for f in files {
                let name = ctx.store.add(Path::new(f))?;
                prefix.push_str(&format!("added {name}\n"));
            }
            build_report(&ctx, args, prefix)
        }
        "drop" => {
            let names = &args.positional[1..];
            if names.is_empty() {
                return Err(CliError::Usage(
                    "corpus drop needs at least one member NAME".into(),
                ));
            }
            let mut prefix = String::new();
            for n in names {
                ctx.store.drop_trace(n)?;
                prefix.push_str(&format!("dropped {n}\n"));
            }
            build_report(&ctx, args, prefix)
        }
        "status" => status_report(&ctx, args),
        "export" => export_report(&ctx, args),
        other => Err(CliError::Usage(format!(
            "unknown corpus subcommand `{other}` (expected build | add | drop | status | export)"
        ))),
    }
}

/// `lockdoc fsck`: check — and with `--repair` restore — the corpus
/// store's crash-consistency invariants (see
/// [`lockdoc_trace::corpus::fsck`] for the recovery state machine).
pub fn cmd_fsck(args: &Args) -> Result<String> {
    let ctx = CorpusCtx::from_args(args)?;
    let opts = FsckOptions {
        repair: args.has("repair"),
        gc: args.has("gc"),
    };
    let report = store_fsck(&ctx.store, &ctx.filter, ctx.jobs, opts)?;
    if args.has("json") {
        let v = Json::obj(vec![
            (
                "journal",
                match &report.journal_action {
                    Some(a) => Json::Str(a.clone()),
                    None => Json::Null,
                },
            ),
            (
                "stray_tmp",
                Json::Arr(
                    report
                        .stray_tmp
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "quarantined",
                Json::Arr(
                    report
                        .quarantined
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "orphaned",
                Json::Arr(
                    report
                        .orphaned
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("healthy", Json::U64(report.members.0 as u64)),
            ("degraded", Json::U64(report.members.1 as u64)),
            ("repaired", Json::Bool(report.repaired)),
            ("clean", Json::Bool(report.is_clean())),
        ]);
        return Ok(v.pretty());
    }
    let mut out = String::new();
    match &report.journal_action {
        Some(action) => out.push_str(&format!("journal: {action}\n")),
        None => out.push_str("journal: clean\n"),
    }
    let verb = if report.repaired { "removed" } else { "found" };
    if !report.stray_tmp.is_empty() {
        out.push_str(&format!(
            "stray temporaries: {} {verb} ({})\n",
            report.stray_tmp.len(),
            report.stray_tmp.join(", ")
        ));
    }
    for name in &report.quarantined {
        out.push_str(&format!(
            "{name}: UNREADABLE — {}\n",
            if report.repaired {
                "moved to .quarantine/"
            } else {
                "would quarantine (run with --repair)"
            }
        ));
    }
    if !report.orphaned.is_empty() {
        out.push_str(&format!(
            "orphaned artifacts: {} {verb}\n",
            report.orphaned.len()
        ));
    }
    out.push_str(&format!(
        "members: {} healthy, {} degraded\n",
        report.members.0, report.members.1
    ));
    if report.is_clean() {
        out.push_str("fsck: clean\n");
    } else if report.repaired {
        out.push_str("fsck: repaired\n");
    } else {
        out.push_str("fsck: issues found (re-run with --repair)\n");
    }
    Ok(out)
}
