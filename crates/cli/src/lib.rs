//! Implementation of the `lockdoc` command-line tool.
//!
//! The binary wires the three LockDoc phases (paper Fig. 5) into
//! subcommands:
//!
//! * `lockdoc trace` — run the instrumented simulated kernel and archive
//!   the event trace (`LDOC1` container),
//! * `lockdoc import` — post-process + import a trace, report statistics,
//!   optionally dump the relational tables as CSV,
//! * `lockdoc derive` — mine locking rules,
//! * `lockdoc check` — validate documented rules against a trace,
//! * `lockdoc doc` — generate locking-rule documentation,
//! * `lockdoc violations` — report rule-violating accesses,
//! * `lockdoc races` — Eraser-style lockset race detection with witness
//!   pairs,
//! * `lockdoc lint` — cross-pass consistency lint joining rules,
//!   violations, races, and lock order into ranked findings,
//! * `lockdoc order` — lock-order graph, inversions, cycles,
//! * `lockdoc scan` — count lock-initializer usage in a C source tree
//!   (the Fig. 1 measurement, usable on a real kernel checkout),
//! * `lockdoc corpus` — manage a directory of traces as one analysis
//!   unit with cached per-trace matrices and group-incremental
//!   re-derivation ([`corpus`]),
//! * `lockdoc serve` — concurrent query daemon over a corpus ([`serve`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod serve;
pub mod xcheck;

use ksim::config::SimConfig;
use ksim::parallel::run_mix_sharded;
use ksim::rules;
use lockdoc_core::checker::{check_rules_par, summarize};
use lockdoc_core::derive::{derive_par, DeriveConfig, MinedRules};
use lockdoc_core::docgen::{generate_doc, generate_rulespec};
use lockdoc_core::lint::{lint, LintInputs};
use lockdoc_core::order::OrderGraph;
use lockdoc_core::race::find_races_par;
use lockdoc_core::rulespec::parse_rules;
use lockdoc_core::violation::find_violations_par;
use lockdoc_platform::json::{Json, ToJson};
use lockdoc_platform::par::resolve_jobs;
use lockdoc_trace::codec::{
    read_trace, read_trace_salvage, write_trace, SalvageReport, TraceReader,
};
use lockdoc_trace::db::{
    filter_fingerprint, fnv1a, import_resilient, import_stream, read_archive, write_archive,
    ImportError, ImportReport, ResilientConfig, TraceDb,
};
use lockdoc_trace::event::Trace;
use std::fs;
use std::io;
use std::path::Path;

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// I/O problem.
    Io(io::Error),
    /// Trace decoding problem.
    Codec(lockdoc_trace::codec::CodecError),
    /// Resilient import refusal (strict corruption or exceeded budget).
    Import(ImportError),
    /// Rule file problem.
    Rules(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Codec(e) => write!(f, "trace error: {e}"),
            CliError::Import(e) => write!(f, "import error: {e}"),
            CliError::Rules(m) => write!(f, "rule error: {m}"),
        }
    }
}

impl From<io::Error> for CliError {
    fn from(e: io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<lockdoc_trace::codec::CodecError> for CliError {
    fn from(e: lockdoc_trace::codec::CodecError) -> Self {
        CliError::Codec(e)
    }
}

impl From<ImportError> for CliError {
    fn from(e: ImportError) -> Self {
        CliError::Import(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, CliError>;

/// Minimal flag parser: `--key value` pairs plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses raw arguments (flags may appear anywhere).
    pub fn parse(raw: &[String]) -> Self {
        let mut out = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                out.flags.push((name.to_owned(), value));
            } else {
                out.positional.push(a.clone());
            }
            i += 1;
        }
        out
    }

    /// String flag value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether a bare flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Numeric flag with default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid value for --{name}: `{v}`"))),
        }
    }

    /// Worker count for the analysis phases: `--jobs N`, else the
    /// `LOCKDOC_JOBS` environment variable, else available parallelism.
    /// The output is identical at any value (`1` = serial path).
    pub fn jobs(&self) -> Result<usize> {
        let explicit: Option<usize> = match self.get("jobs") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| CliError::Usage(format!("invalid value for --jobs: `{v}`")))?,
            ),
        };
        Ok(resolve_jobs(explicit))
    }
}

/// The usage text.
pub const USAGE: &str = "\
lockdoc — trace-based analysis of locking rules

USAGE:
  lockdoc trace      [--ops N] [--seed N] [--no-faults | --racy] [--mix SPEC]
                     [--fs LIST] [--shards N] [--jobs N] --out FILE
  lockdoc import     --trace FILE [--csv-dir DIR] [--jobs N]
                     [--lenient | --strict] [--max-bad-frac X]
  lockdoc doctor     TRACE|DIR [--json] [--jobs N]
  lockdoc derive     --trace FILE [--t-ac X] [--group NAME] [--jobs N] [--rulespec | --json]
  lockdoc check      --trace FILE [--rules FILE] [--jobs N] [--json]
  lockdoc doc        --trace FILE [--group NAME] [--jobs N]
  lockdoc violations --trace FILE [--t-ac X] [--max-examples N] [--jobs N] [--json]
  lockdoc races      --trace FILE [--jobs N] [--json]
  lockdoc lint       --trace FILE [--rules FILE] [--t-ac X] [--static-src DIR]
                     [--jobs N] [--json]
  lockdoc scan       --dir PATH [--per-file] [--per-release] [--jobs N] [--json]
  lockdoc xcheck     [--trace FILE] [--src DIR | --seed N [--sites-per-rule N]]
                     [--jobs N] [--json]
  lockdoc diff       --old FILE --new FILE [--t-ac X]
  lockdoc order      --trace FILE [--jobs N] [--json]
  lockdoc fuzz       [--budget N] [--ops N] [--seed N] [--shards N]
                     [--generation N] [--jobs N] [--json]
  lockdoc corpus     build|status|export|add FILE..|drop NAME.. --dir DIR
                     [--cache-dir DIR] [--t-ac X] [--jobs N] [--json]
                     [--rulespec] [--out FILE]
  lockdoc fsck       --dir DIR [--cache-dir DIR] [--repair] [--gc]
                     [--jobs N] [--json]
  lockdoc serve      --dir DIR (--once [--input FILE] | [--socket PATH])
                     [--cache-dir DIR] [--t-ac X] [--jobs N]
                     [--max-request-bytes N] [--timeout-ms N]
                     [--max-conns N] [--ingest-retries N]

`--jobs N` (or LOCKDOC_JOBS) runs trace generation, import, and the
analysis phases on N workers; output is byte-identical at any worker
count. Default: available parallelism.

`--cache-dir DIR` (or LOCKDOC_CACHE_DIR) keeps a columnar archive of the
imported store per trace: commands that read `--trace FILE` load a valid
archive directly instead of re-decoding and re-importing, and rewrite it
after a fresh import. Archives self-invalidate on trace content, filter
config, or format-version changes; a stale or corrupt archive only costs
a re-import, never a wrong answer. `trace --shards N` splits the
workload across N simulated machines (part of the trace *content*, unlike
--jobs: the same --shards value reproduces the same trace on any machine).
`trace --racy` additionally enables the seeded lockless-writer fault site
(a true-positive workload for `races`/`lint`).

`races` reports members whose candidate lockset (Eraser intersection over
flows, IRQ/flow exclusion as pseudo-locks) is empty, each with a concrete
two-access witness pair. `lint` joins that with mined rules, documented-rule
checking, violations, and the lock-order graph into ranked findings
(CONFIRMED / PROBABLE / SUSPECT / DOWNGRADED) plus doc-vs-observed
lock-order conflicts. `lint --static-src DIR` additionally runs the
static outlier lockset analysis over a C-like source tree and uses its
per-member outliers as a fourth evidence source (a SUSPECT finding with
static corroboration is promoted to PROBABLE).

`scan` counts locking-primitive usage per source tree; `--per-release`
breaks the counts down by top-level subdirectory and `--per-file` by
file. `xcheck` cross-validates the static outlier analysis against the
dynamic passes: it analyzes `--src DIR` (or, by default, a seeded
ground-truth tree with an exact injected-outlier oracle, scored as
oracle precision/recall) and, when `--trace FILE` is given, joins the
static findings with races/checker/violations/lint by (type, member),
reporting per-pass precision and recall.

`import --lenient` salvages damaged containers and quarantines corrupt
events (up to `--max-bad-frac`, default 0.05); `import --strict` refuses
the first corrupt event with a typed diagnosis. `doctor` reports a trace's
health (salvage + quarantine summary) without importing it for analysis.

`fuzz` runs a coverage-guided campaign over workload mixes: --budget
mutated candidates (in rounds of --generation), each running --ops
operations, scored on uncovered functions, zero-observation members,
unseen lock combinations, and pairless race candidates. The report is a
pure function of (--seed, --budget, --ops, --shards, --generation);
--jobs only changes wall-clock time.

`corpus` manages a directory of `.ldoc` traces as one analysis unit:
every member is screened (doctor triage) and summarized into a cached
per-trace observation matrix keyed by trace content + filter + derive
config. `build` merges the cached matrices and derives corpus-level
rules group by group, reusing byte-identically every group whose
contributing traces did not change, so `add`/`drop` of one trace
re-derives only the touched data-type groups. `status` triages without
deriving; `export --out FILE` writes the merged corpus as one trace.
`doctor DIR` prints a per-trace triage line plus a corpus summary.

`fsck` checks the corpus store's crash-consistency invariants: it rolls
an interrupted (journaled) add/drop forward or back, sweeps stray
atomic-write temporaries, quarantines unreadable members into
`.quarantine/`, and with `--gc` removes cache artifacts orphaned by
replaced or dropped members. Without `--repair` it only reports; every
repair is idempotent, so an interrupted fsck is fixed by re-running it.

`serve` answers derive/races/lint/order/status queries over a corpus via
line-delimited JSON (`{\"cmd\": \"derive\"}` per line, one response line
each), concurrently: queries read an immutable snapshot while `add`
ingests build the next snapshot off to the side and swap it in, so
readers never block on ingest. `serve --once` answers a batch of
requests from stdin (or --input FILE) and exits — no socket needed; the
answer texts are byte-identical to the corresponding batch subcommands
run on the merged corpus. The daemon bounds every connection:
`--max-request-bytes` caps one request line (default 65536),
`--timeout-ms` bounds socket reads/writes (default 5000),
`--max-conns` caps concurrent connections — excess clients get a
`server busy (RETRY)` shed response (default 64) — and a panicking
request is isolated to an error response. Transient ingest I/O errors
retry with backoff (`--ingest-retries`, default 2); shutdown drains
in-flight connections before the listener exits.
";

fn load_db(args: &Args) -> Result<TraceDb> {
    let path = args
        .get("trace")
        .ok_or_else(|| CliError::Usage("--trace FILE is required".into()))?;
    load_db_from(path, args)
}

/// Loads and imports a trace, streaming the decode straight into the
/// importer (the full event vector is never materialized). With
/// `--cache-dir DIR` (or `LOCKDOC_CACHE_DIR`), a columnar archive of the
/// imported store is kept next to the analysis: a valid archive is loaded
/// directly, a stale/absent one is rewritten after a fresh import.
fn load_db_from(path: &str, args: &Args) -> Result<TraceDb> {
    let config = rules::filter_config();
    let jobs = args.jobs()?;
    let cache_dir = args
        .get("cache-dir")
        .map(str::to_owned)
        .or_else(|| std::env::var("LOCKDOC_CACHE_DIR").ok());
    match cache_dir {
        Some(dir) => load_db_cached(path, Path::new(&dir), &config, jobs),
        None => {
            let file = fs::File::open(path)?;
            let reader = TraceReader::new(io::BufReader::new(file))?;
            Ok(import_stream(reader, &config, jobs)?)
        }
    }
}

/// Archive location for a trace path: keyed by file name for readability
/// plus an FNV-1a hash of the full path so same-named traces in different
/// directories cannot collide.
fn archive_path(cache_dir: &Path, trace_path: &str) -> std::path::PathBuf {
    let name = Path::new(trace_path)
        .file_name()
        .and_then(|s| s.to_str())
        .unwrap_or("trace");
    cache_dir.join(format!(
        "{name}.{:016x}.ldarc",
        fnv1a(trace_path.as_bytes())
    ))
}

fn load_db_cached(
    trace_path: &str,
    cache_dir: &Path,
    config: &lockdoc_trace::filter::FilterConfig,
    jobs: usize,
) -> Result<TraceDb> {
    let bytes = fs::read(trace_path)?;
    let checksum = fnv1a(&bytes);
    let fp = filter_fingerprint(config);
    let apath = archive_path(cache_dir, trace_path);
    let reader = TraceReader::new(bytes.as_slice())?;
    let meta = std::sync::Arc::clone(reader.meta());
    if let Ok(abytes) = fs::read(&apath) {
        if let Some(db) = read_archive(&abytes, checksum, fp, std::sync::Arc::clone(&meta)) {
            return Ok(db);
        }
    }
    let db = import_stream(reader, config, jobs)?;
    fs::create_dir_all(cache_dir)?;
    // Atomic best-effort write: the rename keeps a crashed run from ever
    // leaving a torn archive under the final name (a torn one would fail
    // validation and merely miss), and failure to cache must not fail
    // the run.
    let _ = lockdoc_platform::vfs::Vfs::real_from_env()
        .atomic_write(&apath, &write_archive(&db, checksum, fp));
    Ok(db)
}

/// `lockdoc trace`.
pub fn cmd_trace(args: &Args) -> Result<String> {
    let ops: u64 = args.num("ops", 20_000u64)?;
    let seed: u64 = args.num("seed", 0x10c_d0cu64)?;
    let out = args
        .get("out")
        .ok_or_else(|| CliError::Usage("--out FILE is required".into()))?;
    let shards: u64 = args.num("shards", 1u64)?;
    let jobs = args.jobs()?;
    if args.has("racy") && args.has("no-faults") {
        return Err(CliError::Usage(
            "--racy and --no-faults are mutually exclusive".into(),
        ));
    }
    let mut cfg = SimConfig::with_seed(seed);
    if let Some(spec) = args.get("fs") {
        // Restricted boot: mount only the listed filesystems (the mix
        // must not use any other; see ksim's SimConfig::mounts).
        let mut fss = Vec::new();
        for name in spec.split(',').filter(|n| !n.trim().is_empty()) {
            let fs = ksim::subsys::FsKind::from_subclass(name.trim()).ok_or_else(|| {
                CliError::Usage(format!("unknown filesystem `{}` in --fs", name.trim()))
            })?;
            if !fss.contains(&fs) {
                fss.push(fs);
            }
        }
        if fss.is_empty() {
            return Err(CliError::Usage("--fs needs at least one filesystem".into()));
        }
        cfg = cfg.with_mounts(fss);
    }
    if args.has("racy") {
        cfg = cfg.with_faults(rules::racy_fault_plan());
    } else if !args.has("no-faults") {
        cfg = cfg.with_faults(rules::default_fault_plan());
    }
    let run = run_mix_sharded(&cfg, args.get("mix"), ops, shards, jobs).map_err(CliError::Usage)?;
    let summary = run.trace.summary();
    let mut buf = Vec::new();
    write_trace(&run.trace, &mut buf)?;
    fs::write(out, &buf)?;
    Ok(format!(
        "wrote {out}: {} events ({} accesses, {} lock ops), {} injected faults, \
         {} shard(s), {} bytes",
        summary.total,
        summary.mem_accesses,
        summary.lock_ops,
        run.fault_log.total(),
        run.shards,
        buf.len()
    ))
}

/// Renders the non-clean parts of a salvage report for terminal output.
fn describe_salvage(s: &SalvageReport) -> String {
    let mut line = format!(
        "salvage: {} decode failure(s), {} byte(s) skipped, recovered {}/{} events",
        s.failures, s.bytes_skipped, s.recovered_events, s.expected_events
    );
    if s.truncated {
        line.push_str(", input truncated");
    }
    if s.trailing_bytes > 0 {
        line.push_str(&format!(", {} trailing byte(s)", s.trailing_bytes));
    }
    line.push('\n');
    for d in &s.diags {
        line.push_str(&format!(
            "  record {} at byte {}: {}{}\n",
            d.event_index,
            d.offset,
            d.error,
            match d.resumed_at {
                Some(off) => format!(" (resumed at byte {off})"),
                None => " (no resync point)".to_owned(),
            }
        ));
    }
    line
}

/// Renders the quarantine section of an import report.
fn describe_quarantine(r: &ImportReport) -> String {
    let mut out = format!(
        "quarantined: {}/{} events ({:.2}%)\n",
        r.quarantined.len(),
        r.events,
        r.bad_frac * 100.0
    );
    for (class, n) in r.counts() {
        out.push_str(&format!("  {class}: {n}\n"));
    }
    for q in r.quarantined.iter().take(5) {
        out.push_str(&format!(
            "  event {}: {}: {}\n",
            q.event_index, q.class, q.detail
        ));
    }
    if r.quarantined.len() > 5 {
        out.push_str(&format!("  ... {} more\n", r.quarantined.len() - 5));
    }
    out
}

/// `lockdoc import`.
pub fn cmd_import(args: &Args) -> Result<String> {
    let lenient = args.has("lenient");
    let strict = args.has("strict");
    if lenient && strict {
        return Err(CliError::Usage(
            "--lenient and --strict are mutually exclusive".into(),
        ));
    }
    let mut out = String::new();
    let db = if lenient || strict {
        let path = args
            .get("trace")
            .ok_or_else(|| CliError::Usage("--trace FILE is required".into()))?;
        let bytes = fs::read(path)?;
        let jobs = args.jobs()?;
        let (trace, rcfg) = if strict {
            // Strict: the container must decode perfectly before the
            // event stream is even considered.
            (
                read_trace(&mut bytes.as_slice())?,
                ResilientConfig::strict(),
            )
        } else {
            let (trace, salvage) = read_trace_salvage(&bytes)?;
            if !salvage.is_clean() {
                out.push_str(&describe_salvage(&salvage));
            }
            let max_bad_frac: f64 = args.num("max-bad-frac", 0.05f64)?;
            (trace, ResilientConfig::lenient(max_bad_frac))
        };
        let (db, report) = import_resilient(&trace, &rules::filter_config(), jobs, &rcfg)?;
        if !report.is_clean() {
            out.push_str(&describe_quarantine(&report));
        }
        db
    } else {
        load_db(args)?
    };
    let st = &db.stats;
    out.push_str(&format!(
        "events: {}\naccesses: {} seen, {} imported, {} filtered, {} unresolved\n\
         locks: {} ({} static, {} embedded)\ntxns: {}\nstacks: {}\n",
        st.events,
        st.accesses_seen,
        st.accesses_imported,
        st.total_filtered(),
        st.unresolved,
        st.locks,
        st.static_locks,
        st.embedded_locks,
        st.txns,
        st.stacks
    ));
    if let Some(dir) = args.get("csv-dir") {
        fs::create_dir_all(dir)?;
        for (name, csv) in db.export_csv_tables() {
            let path = Path::new(dir).join(format!("{name}.csv"));
            fs::write(&path, csv)?;
            out.push_str(&format!("wrote {}\n", path.display()));
        }
    }
    Ok(out)
}

/// `lockdoc doctor`: trace health report (salvage + quarantine) without
/// running any analysis.
pub fn cmd_doctor(args: &Args) -> Result<String> {
    let path = args
        .positional
        .first()
        .map(String::as_str)
        .or_else(|| args.get("trace"))
        .ok_or_else(|| CliError::Usage("doctor needs a TRACE file or corpus DIR".into()))?;
    if Path::new(path).is_dir() {
        return doctor_dir(path, args);
    }
    let bytes = fs::read(path)?;
    let jobs = args.jobs()?;
    let (trace, salvage) = match read_trace_salvage(&bytes) {
        Ok(ok) => ok,
        Err(e) => {
            // The header (magic, metadata, event count) is the one part
            // salvage cannot work around; report rather than error so
            // `doctor` always renders a diagnosis.
            if args.has("json") {
                let v = Json::Obj(vec![
                    ("verdict".to_owned(), Json::Str("unreadable".to_owned())),
                    ("error".to_owned(), Json::Str(e.to_string())),
                ]);
                return Ok(v.pretty());
            }
            return Ok(format!("{path}: UNREADABLE — {e}\n"));
        }
    };
    // Budget 1.0: doctor reports damage, it never refuses over it.
    let (_, report) = import_resilient(
        &trace,
        &rules::filter_config(),
        jobs,
        &ResilientConfig::lenient(1.0),
    )?;
    let healthy = salvage.is_clean() && report.is_clean();
    if args.has("json") {
        let v = Json::Obj(vec![
            (
                "verdict".to_owned(),
                Json::Str(if healthy { "healthy" } else { "degraded" }.to_owned()),
            ),
            ("salvage".to_owned(), salvage.to_json()),
            ("import".to_owned(), report.to_json()),
        ]);
        return Ok(v.pretty());
    }
    let mut out = if healthy {
        format!(
            "{path}: HEALTHY — {} events, 0 quarantined\n",
            report.events
        )
    } else {
        format!("{path}: DEGRADED\n")
    };
    if !salvage.is_clean() {
        out.push_str(&describe_salvage(&salvage));
    }
    if !report.is_clean() {
        out.push_str(&describe_quarantine(&report));
    }
    Ok(out)
}

/// `lockdoc doctor DIR`: triage every `.ldoc` trace in a directory with
/// one verdict line each, plus a corpus health summary.
fn doctor_dir(dir: &str, args: &Args) -> Result<String> {
    let mut names: Vec<String> = fs::read_dir(dir)?
        .filter_map(|e| {
            let path = e.ok()?.path();
            if path.extension().and_then(|x| x.to_str()) == Some("ldoc") {
                path.file_name().and_then(|n| n.to_str()).map(str::to_owned)
            } else {
                None
            }
        })
        .collect();
    names.sort();
    let filter = rules::filter_config();
    let jobs = args.jobs()?;
    let mut rows = Vec::new();
    for name in &names {
        let bytes = fs::read(Path::new(dir).join(name))?;
        let (_, screen) = lockdoc_trace::corpus::screen_trace(&bytes, &filter, jobs);
        let (events, quarantined) = match &screen.import {
            Some(r) => (r.events, r.quarantined.len() as u64),
            None => (0, 0),
        };
        rows.push((
            name.clone(),
            screen.health,
            events,
            quarantined,
            screen.error,
        ));
    }
    let count = |h: lockdoc_trace::corpus::Health| rows.iter().filter(|r| r.1 == h).count();
    let (healthy, degraded, unreadable) = (
        count(lockdoc_trace::corpus::Health::Healthy),
        count(lockdoc_trace::corpus::Health::Degraded),
        count(lockdoc_trace::corpus::Health::Unreadable),
    );
    if args.has("json") {
        let traces: Vec<Json> = rows
            .iter()
            .map(|(name, health, events, quarantined, error)| {
                let mut pairs = vec![
                    ("name", Json::Str(name.clone())),
                    ("verdict", Json::Str(health.name().to_owned())),
                    ("events", Json::U64(*events)),
                    ("quarantined", Json::U64(*quarantined)),
                ];
                if let Some(e) = error {
                    pairs.push(("error", Json::Str(e.clone())));
                }
                Json::obj(pairs)
            })
            .collect();
        let v = Json::obj(vec![
            ("traces", Json::Arr(traces)),
            ("healthy", Json::U64(healthy as u64)),
            ("degraded", Json::U64(degraded as u64)),
            ("unreadable", Json::U64(unreadable as u64)),
        ]);
        return Ok(v.pretty());
    }
    let mut out = String::new();
    for (name, health, events, quarantined, error) in &rows {
        out.push_str(&corpus::render_triage_line(
            name,
            *health,
            *events,
            *quarantined,
            error.as_deref(),
        ));
    }
    out.push_str(&format!(
        "corpus: {} trace(s) — {healthy} healthy, {degraded} degraded, {unreadable} unreadable\n",
        rows.len()
    ));
    Ok(out)
}

/// `lockdoc derive`.
pub fn cmd_derive(args: &Args) -> Result<String> {
    let db = load_db(args)?;
    let t_ac: f64 = args.num("t-ac", 0.9f64)?;
    let jobs = args.jobs()?;
    let mut mined = derive_par(&db, &DeriveConfig::with_threshold(t_ac), jobs);
    if let Some(want) = args.get("group") {
        mined.groups.retain(|g| g.group_name == want);
        if mined.groups.is_empty() {
            return Err(CliError::Usage("no matching observation group".into()));
        }
    }
    if args.has("json") {
        return Ok(lockdoc_platform::json::to_string_pretty(&mined));
    }
    Ok(render_rules_text(&mined, args.has("rulespec")))
}

/// Renders mined rules in the standard `derive` text format. Shared by
/// `derive`, `corpus build`, and the `serve` query layer so the formats
/// cannot drift apart.
pub fn render_rules_text(mined: &MinedRules, rulespec: bool) -> String {
    let mut out = String::new();
    for group in &mined.groups {
        if rulespec {
            out.push_str(&generate_rulespec(group));
        } else {
            out.push_str(&format!("[{}]\n", group.group_name));
            for rule in &group.rules {
                out.push_str(&format!(
                    "  {}:{} = {} (sa {} / {} units, sr {:.2}%)\n",
                    rule.member_name,
                    rule.kind,
                    rule.winner.hypothesis.describe(),
                    rule.winner.hypothesis.sa,
                    rule.total_units,
                    rule.winner.hypothesis.sr * 100.0
                ));
            }
            if group.truncated_units > 0 {
                out.push_str(&format!(
                    "  ({} observation units exceeded the enumeration cap; \
                     evidence kept, long hypotheses not enumerated)\n",
                    group.truncated_units
                ));
            }
        }
    }
    out
}

/// `lockdoc check`.
pub fn cmd_check(args: &Args) -> Result<String> {
    let db = load_db(args)?;
    let text = match args.get("rules") {
        Some(path) => fs::read_to_string(path)?,
        None => rules::documented_rules().to_owned(),
    };
    let parsed = parse_rules(&text).map_err(|e| CliError::Rules(e.to_string()))?;
    let checked = check_rules_par(&db, &parsed, args.jobs()?);
    if args.has("json") {
        return Ok(lockdoc_platform::json::to_string_pretty(&checked));
    }
    let mut out = String::new();
    for c in &checked {
        out.push_str(&format!(
            "{:60} sr {:6.2}%  {}\n",
            c.rule.to_string(),
            c.sr * 100.0,
            c.verdict
        ));
    }
    out.push('\n');
    for row in summarize(&checked) {
        out.push_str(&format!(
            "{:16} #R={:3} #No={:3} #Ob={:3} ok={:.1}% ~={:.1}% bad={:.1}%\n",
            row.type_name,
            row.rules,
            row.not_observed,
            row.observed,
            row.pct_correct,
            row.pct_ambivalent,
            row.pct_incorrect
        ));
    }
    Ok(out)
}

/// `lockdoc doc`.
pub fn cmd_doc(args: &Args) -> Result<String> {
    let db = load_db(args)?;
    let mined = derive_par(&db, &DeriveConfig::default(), args.jobs()?);
    let mut out = String::new();
    for group in &mined.groups {
        if let Some(want) = args.get("group") {
            if group.group_name != want {
                continue;
            }
        }
        out.push_str(&generate_doc(group));
        out.push('\n');
    }
    if out.is_empty() {
        return Err(CliError::Usage("no matching observation group".into()));
    }
    Ok(out)
}

/// `lockdoc violations`.
pub fn cmd_violations(args: &Args) -> Result<String> {
    let db = load_db(args)?;
    let t_ac: f64 = args.num("t-ac", 0.9f64)?;
    let max_examples: usize = args.num("max-examples", 5usize)?;
    let jobs = args.jobs()?;
    let mined = derive_par(&db, &DeriveConfig::with_threshold(t_ac), jobs);
    let violations = find_violations_par(&db, &mined, max_examples, jobs);
    if args.has("json") {
        return Ok(lockdoc_platform::json::to_string_pretty(&violations));
    }
    let mut out = String::new();
    for v in violations.iter().filter(|v| v.events > 0) {
        out.push_str(&format!(
            "{}: {} events, {} members, {} contexts\n",
            v.group_name,
            v.events,
            v.members.len(),
            v.context_count()
        ));
        for ex in &v.examples {
            out.push_str(&format!(
                "  {}.{}:{}\n    required: {}\n    held:     {}\n    at {} ({})\n",
                ex.group_name,
                ex.member_name,
                ex.kind,
                lockdoc_core::lockset::format_sequence(&ex.required),
                lockdoc_core::lockset::format_sequence(&ex.held),
                db.format_loc(ex.loc),
                db.format_stack(ex.stack)
            ));
        }
    }
    if out.is_empty() {
        out.push_str("no violations found\n");
    }
    Ok(out)
}

/// One aggregate scan line (shared by the total and the breakdowns).
fn scan_counts_line(c: &locksrc::scan::LockUsageCounts) -> String {
    format!(
        "{} spinlock inits, {} mutex inits, {} rwlock inits, \
         {} rwsem inits, {} seqlock inits, {} semaphore inits, {} rcu usages, {} LoC",
        c.spinlock_inits,
        c.mutex_inits,
        c.rwlock_inits,
        c.rwsem_inits,
        c.seqlock_inits,
        c.semaphore_inits,
        c.rcu_usages,
        c.loc
    )
}

/// `lockdoc scan`: walks a directory of C sources, scanning files in
/// parallel (sorted paths, byte-identical at any `--jobs`). `--per-file`
/// breaks the counts down per source file; `--per-release` groups by
/// first path component below `--dir` (the layout of per-release corpus
/// dumps and of `linux-vX.Y/` checkout collections).
pub fn cmd_scan(args: &Args) -> Result<String> {
    let dir = args
        .get("dir")
        .ok_or_else(|| CliError::Usage("--dir PATH is required".into()))?;
    let root = Path::new(dir);
    if !root.exists() {
        return Err(CliError::Usage(format!("no such directory: {dir}")));
    }
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(path) = stack.pop() {
        if path.is_dir() {
            for entry in fs::read_dir(&path)? {
                stack.push(entry?.path());
            }
        } else if matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("c") | Some("h")
        ) {
            paths.push(path);
        }
    }
    paths.sort();
    let jobs = args.jobs()?;
    let per_file: Vec<(String, locksrc::scan::LockUsageCounts)> =
        lockdoc_platform::par::par_map(jobs, &paths, |path| {
            let src = fs::read_to_string(path).unwrap_or_default();
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            (rel, locksrc::scan_source(&src))
        });
    let mut total = locksrc::scan::LockUsageCounts::default();
    for (_, c) in &per_file {
        total.merge(c);
    }
    let files = per_file.len();
    // Per-release rollup: first path component under --dir ("." for
    // files directly inside it).
    let mut per_release: Vec<(String, u64, locksrc::scan::LockUsageCounts)> = Vec::new();
    if args.has("per-release") {
        let mut by_release: std::collections::BTreeMap<String, (u64, _)> =
            std::collections::BTreeMap::new();
        for (rel, c) in &per_file {
            let release = match rel.split_once('/') {
                Some((first, _)) => first.to_owned(),
                None => ".".to_owned(),
            };
            let entry = by_release
                .entry(release)
                .or_insert((0u64, locksrc::scan::LockUsageCounts::default()));
            entry.0 += 1;
            entry.1.merge(c);
        }
        per_release = by_release
            .into_iter()
            .map(|(r, (n, c))| (r, n, c))
            .collect();
    }
    if args.has("json") {
        let mut fields = vec![
            ("files", (files as u64).to_json()),
            ("counts", total.to_json()),
        ];
        if args.has("per-release") {
            fields.push((
                "per_release",
                Json::Arr(
                    per_release
                        .iter()
                        .map(|(r, n, c)| {
                            Json::obj(vec![
                                ("release", r.to_json()),
                                ("files", n.to_json()),
                                ("counts", c.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if args.has("per-file") {
            fields.push((
                "per_file",
                Json::Arr(
                    per_file
                        .iter()
                        .map(|(p, c)| {
                            Json::obj(vec![("path", p.to_json()), ("counts", c.to_json())])
                        })
                        .collect(),
                ),
            ));
        }
        return Ok(Json::obj(fields).pretty());
    }
    let mut out = format!("{files} files: {}", scan_counts_line(&total));
    for (release, n, c) in &per_release {
        out.push_str(&format!(
            "\n  {release}: {n} files, {}",
            scan_counts_line(c)
        ));
    }
    if args.has("per-file") {
        for (p, c) in &per_file {
            out.push_str(&format!("\n  {p}: {}", scan_counts_line(c)));
        }
    }
    Ok(out)
}

/// `lockdoc order`: lock-order graph, inversions and deadlock-potential
/// cycles (ex-post lockdep).
pub fn cmd_order(args: &Args) -> Result<String> {
    let db = load_db(args)?;
    let graph = OrderGraph::build_par(&db, args.jobs()?);
    if args.has("json") {
        return Ok(lockdoc_platform::json::to_string_pretty(&graph));
    }
    Ok(graph.report(&db))
}

/// `lockdoc races`: Eraser-style lockset race detection with witness
/// pairs.
pub fn cmd_races(args: &Args) -> Result<String> {
    let db = load_db(args)?;
    let races = find_races_par(&db, args.jobs()?);
    if args.has("json") {
        return Ok(lockdoc_platform::json::to_string_pretty(&races));
    }
    Ok(races.render(&db))
}

/// `lockdoc lint`: cross-pass consistency lint — joins mined rules,
/// documented-rule checking, violations, race candidates, and the
/// lock-order graph into ranked findings. With `--static-src DIR` the
/// static outlier pass over that source tree joins as a fourth
/// evidence source.
pub fn cmd_lint(args: &Args) -> Result<String> {
    let db = load_db(args)?;
    let t_ac: f64 = args.num("t-ac", 0.9f64)?;
    let jobs = args.jobs()?;
    let mined = derive_par(&db, &DeriveConfig::with_threshold(t_ac), jobs);
    let text = match args.get("rules") {
        Some(path) => fs::read_to_string(path)?,
        None => rules::documented_rules().to_owned(),
    };
    let parsed = parse_rules(&text).map_err(|e| CliError::Rules(e.to_string()))?;
    let checked = check_rules_par(&db, &parsed, jobs);
    let violations = find_violations_par(&db, &mined, 3, jobs);
    let races = find_races_par(&db, jobs);
    let order = OrderGraph::build_par(&db, jobs);
    let statics = match args.get("static-src") {
        Some(dir) => {
            let files = xcheck::collect_source_files(Path::new(dir))?;
            let report = locksrc::analyze_tree(&files, &locksrc::MinerConfig::default(), jobs);
            Some(xcheck::to_static_evidence(&report))
        }
        None => None,
    };
    let report = lint(
        &db,
        &LintInputs {
            mined: &mined,
            checked: &checked,
            violations: &violations,
            races: &races,
            order: &order,
            statics: statics.as_ref(),
        },
        jobs,
    );
    if args.has("json") {
        return Ok(lockdoc_platform::json::to_string_pretty(&report));
    }
    Ok(report.render(&db))
}

/// `lockdoc diff`: mined-rule drift between two traces.
pub fn cmd_diff(args: &Args) -> Result<String> {
    let t_ac: f64 = args.num("t-ac", 0.9f64)?;
    let jobs = args.jobs()?;
    let load = |flag: &str| -> Result<lockdoc_core::derive::MinedRules> {
        let path = args
            .get(flag)
            .ok_or_else(|| CliError::Usage(format!("--{flag} FILE is required")))?;
        let file = fs::File::open(path)?;
        let reader = TraceReader::new(io::BufReader::new(file))?;
        let db = import_stream(reader, &rules::filter_config(), jobs)?;
        Ok(derive_par(&db, &DeriveConfig::with_threshold(t_ac), jobs))
    };
    let old = load("old")?;
    let new = load("new")?;
    let diff = lockdoc_core::rulediff::diff_rules(&old, &new);
    if args.has("json") {
        return Ok(lockdoc_platform::json::to_string_pretty(&diff));
    }
    Ok(diff.render())
}

/// `lockdoc fuzz`: coverage-guided feedback fuzzing of workload mixes.
pub fn cmd_fuzz(args: &Args) -> Result<String> {
    let defaults = ksim::fuzz::FuzzConfig::default();
    let cfg = ksim::fuzz::FuzzConfig {
        seed: args.num("seed", defaults.seed)?,
        budget: args.num("budget", defaults.budget)?,
        ops: args.num("ops", defaults.ops)?,
        shards: args.num("shards", defaults.shards)?,
        generation: args.num("generation", defaults.generation)?,
    };
    let report = ksim::fuzz::run_campaign(&cfg, args.jobs()?)
        .map_err(|e| CliError::Usage(format!("fuzz: {e}")))?;
    if args.has("json") {
        return Ok(lockdoc_platform::json::to_string_pretty(&report));
    }
    Ok(report.render())
}

/// Dispatches a full command line (without the binary name).
pub fn run(raw: &[String]) -> Result<String> {
    let Some(cmd) = raw.first() else {
        return Err(CliError::Usage(USAGE.to_owned()));
    };
    let args = Args::parse(&raw[1..]);
    match cmd.as_str() {
        "trace" => cmd_trace(&args),
        "import" => cmd_import(&args),
        "doctor" => cmd_doctor(&args),
        "derive" => cmd_derive(&args),
        "check" => cmd_check(&args),
        "doc" => cmd_doc(&args),
        "violations" => cmd_violations(&args),
        "races" => cmd_races(&args),
        "lint" => cmd_lint(&args),
        "scan" => cmd_scan(&args),
        "xcheck" => xcheck::cmd_xcheck(&args),
        "diff" => cmd_diff(&args),
        "order" => cmd_order(&args),
        "fuzz" => cmd_fuzz(&args),
        "corpus" => corpus::cmd_corpus(&args),
        "fsck" => corpus::cmd_fsck(&args),
        "serve" => serve::cmd_serve(&args),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError::Usage(format!(
            "unknown subcommand `{other}`\n{USAGE}"
        ))),
    }
}

/// Round-trips a [`Trace`] through a temp file (test helper).
pub fn save_trace(trace: &Trace, path: &Path) -> Result<()> {
    let mut buf = Vec::new();
    write_trace(trace, &mut buf)?;
    fs::write(path, buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn args_parse_flags_and_positionals() {
        let a = Args::parse(&s(&["--ops", "100", "pos", "--flag", "--out", "f.bin"]));
        assert_eq!(a.get("ops"), Some("100"));
        assert_eq!(a.get("out"), Some("f.bin"));
        assert!(a.has("flag"));
        assert_eq!(a.positional, vec!["pos"]);
        assert_eq!(a.num("ops", 0u64).unwrap(), 100);
        assert!(a.num::<u64>("out", 0).is_err());
    }

    #[test]
    fn unknown_subcommand_reports_usage() {
        let err = run(&s(&["frobnicate"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("unknown subcommand"));
    }

    #[test]
    fn full_pipeline_through_temp_files() {
        let dir = std::env::temp_dir().join("lockdoc-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.ldoc");
        let out = run(&s(&[
            "trace",
            "--ops",
            "400",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("events"));
        let out = run(&s(&["import", "--trace", trace_path.to_str().unwrap()])).unwrap();
        assert!(out.contains("txns:"));
        let out = run(&s(&[
            "derive",
            "--trace",
            trace_path.to_str().unwrap(),
            "--group",
            "dentry",
        ]))
        .unwrap();
        assert!(out.contains("[dentry]"));
        // The filter is exclusive: no other group may appear.
        assert_eq!(out.matches('[').count(), 1, "only dentry printed:\n{out}");
        let err = run(&s(&[
            "derive",
            "--trace",
            trace_path.to_str().unwrap(),
            "--group",
            "no_such_group",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no matching observation group"));
        let out = run(&s(&["check", "--trace", trace_path.to_str().unwrap()])).unwrap();
        assert!(out.contains("inode"));
        let out = run(&s(&[
            "doc",
            "--trace",
            trace_path.to_str().unwrap(),
            "--group",
            "inode:ext4",
        ]))
        .unwrap();
        assert!(out.contains("locking rules"));
        let out = run(&s(&["violations", "--trace", trace_path.to_str().unwrap()])).unwrap();
        assert!(!out.is_empty());
        let json = run(&s(&[
            "derive",
            "--trace",
            trace_path.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        let value = lockdoc_platform::json::parse(&json).expect("valid json");
        assert!(value.get("groups").is_some_and(|g| g.is_array()));
        // diff a trace against itself: empty drift.
        let out = run(&s(&[
            "diff",
            "--old",
            trace_path.to_str().unwrap(),
            "--new",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("0 changed, 0 added, 0 removed"));
        let out = run(&s(&["order", "--trace", trace_path.to_str().unwrap()])).unwrap();
        assert!(out.contains("lock-order graph:"));
        let json = run(&s(&[
            "order",
            "--trace",
            trace_path.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        let value = lockdoc_platform::json::parse(&json).expect("valid json");
        assert!(value.get("edges").is_some_and(|e| e.is_array()));
        let out = run(&s(&["races", "--trace", trace_path.to_str().unwrap()])).unwrap();
        assert!(out.contains("race detector:"), "{out}");
        let json = run(&s(&[
            "races",
            "--trace",
            trace_path.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        let value = lockdoc_platform::json::parse(&json).expect("valid json");
        assert!(value.get("groups").is_some_and(|g| g.is_array()));
        let out = run(&s(&["lint", "--trace", trace_path.to_str().unwrap()])).unwrap();
        assert!(out.contains("consistency lint:"), "{out}");
        let json = run(&s(&[
            "lint",
            "--trace",
            trace_path.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        let value = lockdoc_platform::json::parse(&json).expect("valid json");
        assert!(value.get("findings").is_some_and(|f| f.is_array()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jobs_flag_does_not_change_output() {
        let dir = std::env::temp_dir().join("lockdoc-jobs-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.ldoc");
        run(&s(&["trace", "--ops", "400", "--out", p.to_str().unwrap()])).unwrap();
        for cmd in [
            "derive",
            "doc",
            "violations",
            "check",
            "order",
            "races",
            "lint",
        ] {
            let serial = run(&s(&[cmd, "--trace", p.to_str().unwrap(), "--jobs", "1"])).unwrap();
            let parallel = run(&s(&[cmd, "--trace", p.to_str().unwrap(), "--jobs", "4"])).unwrap();
            assert_eq!(serial, parallel, "{cmd} output differs across --jobs");
        }
        assert!(Args::parse(&s(&["--jobs", "zebra"])).jobs().is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_dir_hits_are_byte_identical_to_fresh_imports() {
        let dir = std::env::temp_dir().join("lockdoc-cache-test");
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.ldoc");
        let cache = dir.join("cache");
        let t = p.to_str().unwrap();
        let c = cache.to_str().unwrap();
        run(&s(&["trace", "--ops", "400", "--out", t])).unwrap();
        for cmd in ["races", "lint", "order"] {
            let fresh = run(&s(&[cmd, "--trace", t, "--jobs", "1"])).unwrap();
            // First cached run writes the archive (miss), second loads it
            // (hit); both must match the uncached output, across jobs.
            let miss = run(&s(&[cmd, "--trace", t, "--jobs", "1", "--cache-dir", c])).unwrap();
            let hit = run(&s(&[cmd, "--trace", t, "--jobs", "4", "--cache-dir", c])).unwrap();
            assert_eq!(fresh, miss, "{cmd}: cache miss output differs");
            assert_eq!(fresh, hit, "{cmd}: cache hit output differs");
        }
        let archives: Vec<_> = fs::read_dir(&cache)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(archives.len(), 1, "one archive per (path, trace) key");
        // Regenerating the trace (new content) must invalidate the archive:
        // the next cached run still matches a fresh import of the new trace.
        run(&s(&["trace", "--ops", "500", "--seed", "9", "--out", t])).unwrap();
        let fresh = run(&s(&["races", "--trace", t, "--jobs", "1"])).unwrap();
        let cached = run(&s(&[
            "races",
            "--trace",
            t,
            "--jobs",
            "1",
            "--cache-dir",
            c,
        ]))
        .unwrap();
        assert_eq!(fresh, cached, "stale archive must miss, not serve old data");
        // A corrupt archive misses cleanly too.
        let apath = &archives[0];
        let mut bytes = fs::read(apath).unwrap();
        if let Some(b) = bytes.get_mut(40) {
            *b ^= 0xff;
        }
        fs::write(apath, &bytes).unwrap();
        let after_corrupt = run(&s(&[
            "races",
            "--trace",
            t,
            "--jobs",
            "1",
            "--cache-dir",
            c,
        ]))
        .unwrap();
        assert_eq!(fresh, after_corrupt, "corrupt archive must fall back");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fuzz_subcommand_is_jobs_invariant_and_round_trips_json() {
        let base = s(&["fuzz", "--budget", "2", "--ops", "140", "--seed", "5"]);
        let serial = run(&[base.clone(), s(&["--jobs", "1"])].concat()).unwrap();
        let parallel = run(&[base.clone(), s(&["--jobs", "4"])].concat()).unwrap();
        assert_eq!(serial, parallel, "fuzz output differs across --jobs");
        assert!(
            serial.contains("fuzz campaign: seed=0x5 budget=2"),
            "{serial}"
        );
        assert!(serial.contains("baseline (standard mix):"), "{serial}");
        let json = run(&[base, s(&["--json", "--jobs", "2"])].concat()).unwrap();
        let report: ksim::fuzz::FuzzReport =
            lockdoc_platform::json::from_str(&json).expect("valid fuzz json");
        assert_eq!(report.seed, 5);
        assert_eq!(report.budget, 2);
        assert_eq!(report.corpus[0].gain, "baseline");
        // Bad knobs surface as usage errors, not panics.
        assert!(run(&s(&["fuzz", "--budget", "0"])).is_err());
        assert!(run(&s(&["fuzz", "--budget", "x"])).is_err());
    }

    #[test]
    fn trace_accepts_custom_mix() {
        let dir = std::env::temp_dir().join("lockdoc-mix-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("m.ldoc");
        let out = run(&s(&[
            "trace",
            "--ops",
            "100",
            "--mix",
            "pipes=1,perms=1",
            "--out",
            p.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("events"));
        let err = run(&s(&[
            "trace",
            "--ops",
            "10",
            "--mix",
            "quake=3",
            "--out",
            p.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown workload"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn doctor_and_resilient_import_modes() {
        let dir = std::env::temp_dir().join("lockdoc-doctor-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.ldoc");
        run(&s(&[
            "trace",
            "--ops",
            "300",
            "--no-faults",
            "--out",
            p.to_str().unwrap(),
        ]))
        .unwrap();

        // A freshly recorded trace is healthy.
        let out = run(&s(&["doctor", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("HEALTHY"), "{out}");
        let json = run(&s(&["doctor", p.to_str().unwrap(), "--json"])).unwrap();
        let v = lockdoc_platform::json::parse(&json).expect("valid json");
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("healthy"));
        assert!(v.get("salvage").is_some() && v.get("import").is_some());

        // Clip the tail: strict refuses, lenient salvages the prefix.
        let full = fs::read(&p).unwrap();
        let clipped = dir.join("clipped.ldoc");
        fs::write(&clipped, &full[..full.len() - 1]).unwrap();
        let err = run(&s(&[
            "import",
            "--strict",
            "--trace",
            clipped.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Codec(_)), "{err}");
        let out = run(&s(&[
            "import",
            "--lenient",
            "--trace",
            clipped.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("salvage:"), "{out}");
        assert!(out.contains("input truncated"), "{out}");
        assert!(out.contains("txns:"), "{out}");
        let out = run(&s(&["doctor", clipped.to_str().unwrap()])).unwrap();
        assert!(out.contains("DEGRADED"), "{out}");

        // A file that is not an LDOC1 container at all: doctor diagnoses
        // instead of erroring.
        let garbage = dir.join("garbage.ldoc");
        fs::write(&garbage, b"not a trace").unwrap();
        let out = run(&s(&["doctor", garbage.to_str().unwrap()])).unwrap();
        assert!(out.contains("UNREADABLE"), "{out}");

        // The two policies are mutually exclusive.
        let err = run(&s(&[
            "import",
            "--lenient",
            "--strict",
            "--trace",
            p.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");

        // On a clean trace the resilient paths agree with the fast path.
        let fast = run(&s(&["import", "--trace", p.to_str().unwrap()])).unwrap();
        let lenient = run(&s(&["import", "--lenient", "--trace", p.to_str().unwrap()])).unwrap();
        let strict = run(&s(&["import", "--strict", "--trace", p.to_str().unwrap()])).unwrap();
        assert_eq!(fast, lenient);
        assert_eq!(fast, strict);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn doctor_triages_directories() {
        let dir = std::env::temp_dir().join("lockdoc-doctor-dir-test");
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let good = dir.join("a-good.ldoc");
        run(&s(&[
            "trace",
            "--ops",
            "300",
            "--out",
            good.to_str().unwrap(),
        ]))
        .unwrap();
        let full = fs::read(&good).unwrap();
        fs::write(dir.join("b-clipped.ldoc"), &full[..full.len() - 1]).unwrap();
        fs::write(dir.join("c-garbage.ldoc"), b"not a trace").unwrap();
        fs::write(dir.join("ignored.txt"), b"not a member").unwrap();

        let out = run(&s(&["doctor", dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("a-good.ldoc: HEALTHY"), "{out}");
        assert!(out.contains("b-clipped.ldoc: DEGRADED"), "{out}");
        assert!(out.contains("c-garbage.ldoc: UNREADABLE"), "{out}");
        assert!(
            out.contains("corpus: 3 trace(s) — 1 healthy, 1 degraded, 1 unreadable"),
            "{out}"
        );
        let json = run(&s(&["doctor", dir.to_str().unwrap(), "--json"])).unwrap();
        let v = lockdoc_platform::json::parse(&json).expect("valid json");
        assert_eq!(v.get("healthy").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("degraded").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("unreadable").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("traces").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corpus_lifecycle_and_serve_once_match_batch() {
        let base = std::env::temp_dir().join("lockdoc-corpus-cli-test");
        fs::remove_dir_all(&base).ok();
        fs::create_dir_all(&base).unwrap();
        let t1 = base.join("one.ldoc");
        let t2 = base.join("two.ldoc");
        run(&s(&[
            "trace",
            "--ops",
            "300",
            "--seed",
            "1",
            "--out",
            t1.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&[
            "trace",
            "--ops",
            "300",
            "--seed",
            "2",
            "--out",
            t2.to_str().unwrap(),
        ]))
        .unwrap();
        let corpus = base.join("corpus");
        let d = corpus.to_str().unwrap();

        // add = copy in + build; the cold build rebuilds every matrix.
        let out = run(&s(&[
            "corpus",
            "add",
            t1.to_str().unwrap(),
            t2.to_str().unwrap(),
            "--dir",
            d,
        ]))
        .unwrap();
        assert!(out.contains("added one.ldoc"), "{out}");
        assert!(out.contains("corpus: 2 trace(s) — 2 healthy"), "{out}");
        assert!(out.contains("matrices: 0 cached, 2 rebuilt"), "{out}");

        // Warm rebuild: every matrix cached, every group reused, and the
        // rules section is byte-identical to the cold build.
        let warm = run(&s(&["corpus", "build", "--dir", d])).unwrap();
        assert!(warm.contains("matrices: 2 cached, 0 rebuilt"), "{warm}");
        assert!(warm.contains(", 0 re-derived\n"), "{warm}");
        let rules_of = |text: &str| text[text.find("[").expect("rules section")..].to_owned();
        assert_eq!(rules_of(&out), rules_of(&warm));

        // status triages without deriving.
        let st = run(&s(&["corpus", "status", "--dir", d])).unwrap();
        assert!(st.contains("one.ldoc: HEALTHY"), "{st}");
        assert!(st.contains("corpus: 2 trace(s)"), "{st}");

        // The corpus rules equal a batch derivation over the exported
        // merged trace — the equivalence the whole pipeline rests on.
        let merged = base.join("merged.ldoc");
        run(&s(&[
            "corpus",
            "export",
            "--dir",
            d,
            "--out",
            merged.to_str().unwrap(),
        ]))
        .unwrap();
        let batch_derive = run(&s(&["derive", "--trace", merged.to_str().unwrap()])).unwrap();
        assert_eq!(rules_of(&warm), batch_derive);

        // serve --once answers byte-identically to the batch subcommands.
        let queries = base.join("queries.jsonl");
        fs::write(
            &queries,
            "{\"cmd\": \"derive\"}\n{\"cmd\": \"races\"}\n{\"cmd\": \"lint\"}\n\
             {\"cmd\": \"status\"}\n{\"cmd\": \"nope\"}\n{\"cmd\": \"shutdown\"}\n",
        )
        .unwrap();
        let resp = run(&s(&[
            "serve",
            "--dir",
            d,
            "--once",
            "--input",
            queries.to_str().unwrap(),
        ]))
        .unwrap();
        let lines: Vec<Json> = resp
            .lines()
            .map(|l| lockdoc_platform::json::parse(l).expect("response json"))
            .collect();
        assert_eq!(lines.len(), 6);
        let output = |i: usize| lines[i].get("output").and_then(Json::as_str).unwrap();
        assert_eq!(output(0), batch_derive, "serve derive != batch derive");
        let batch_races = run(&s(&["races", "--trace", merged.to_str().unwrap()])).unwrap();
        assert_eq!(output(1), batch_races, "serve races != batch races");
        let batch_lint = run(&s(&["lint", "--trace", merged.to_str().unwrap()])).unwrap();
        assert_eq!(output(2), batch_lint, "serve lint != batch lint");
        assert!(output(3).contains("corpus: 2 trace(s)"));
        assert_eq!(lines[4].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(lines[5].get("ok").and_then(Json::as_bool), Some(true));

        // drop rebuilds from the remaining members.
        let out = run(&s(&["corpus", "drop", "two.ldoc", "--dir", d])).unwrap();
        assert!(out.contains("dropped two.ldoc"), "{out}");
        assert!(out.contains("corpus: 1 trace(s)"), "{out}");
        assert!(run(&s(&["corpus", "drop", "two.ldoc", "--dir", d])).is_err());
        assert!(run(&s(&["corpus", "frobnicate", "--dir", d])).is_err());
        fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn scan_walks_directories() {
        let dir = std::env::temp_dir().join("lockdoc-scan-test");
        fs::create_dir_all(dir.join("sub")).unwrap();
        fs::write(dir.join("a.c"), "spin_lock_init(&x);\n").unwrap();
        fs::write(dir.join("sub/b.h"), "mutex_init(&y);\n").unwrap();
        fs::write(dir.join("ignore.txt"), "spin_lock_init(&z);\n").unwrap();
        let out = run(&s(&["scan", "--dir", dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("2 files"));
        assert!(out.contains("1 spinlock inits"));
        assert!(out.contains("1 mutex inits"));
        let json = run(&s(&["scan", "--dir", dir.to_str().unwrap(), "--json"])).unwrap();
        let v = lockdoc_platform::json::parse(&json).expect("valid json");
        assert_eq!(v.get("files").and_then(Json::as_u64), Some(2));
        assert_eq!(
            v.get("counts")
                .and_then(|c| c.get("spinlock_inits"))
                .and_then(Json::as_u64),
            Some(1)
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_racy_flag_enables_the_lockless_writer() {
        let dir = std::env::temp_dir().join("lockdoc-racy-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("r.ldoc");
        let out = run(&s(&[
            "trace",
            "--ops",
            "1500",
            "--seed",
            "2060345069",
            "--racy",
            "--out",
            p.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("events"));
        // The racy workload surfaces at least one race candidate.
        let races = run(&s(&["races", "--trace", p.to_str().unwrap()])).unwrap();
        assert!(races.contains("RACE"), "{races}");
        let lint_out = run(&s(&["lint", "--trace", p.to_str().unwrap()])).unwrap();
        assert!(lint_out.contains("CONFIRMED"), "{lint_out}");
        let err = run(&s(&[
            "trace",
            "--ops",
            "10",
            "--racy",
            "--no-faults",
            "--out",
            p.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        fs::remove_dir_all(&dir).ok();
    }
}
