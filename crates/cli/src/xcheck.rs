//! `lockdoc xcheck`: cross-validation of the static outlier lockset
//! analysis against the dynamic passes.
//!
//! The static side analyzes a C-like source tree — by default the
//! seeded ground-truth tree `ksim::srcgen` renders, which comes with an
//! exact injected-outlier oracle (every planted deviation's
//! `file:line`). The dynamic side is the usual trace pipeline (races,
//! documented-rule checker, mined-rule violations, lint). The join
//! matches findings by `(type, member)` and reports, per dynamic pass,
//! how much of the static report it corroborates (precision: overlap /
//! static members) and how much of the pass the static report covers
//! (recall: overlap / pass members) — the numbers the original paper
//! never had, since it lacked a second, independent oracle.
//!
//! Every stage is sharded on `platform::par`; the output is
//! byte-identical at any `--jobs` (gated in `scripts/verify.sh`).

use crate::{load_db_from, Args, CliError, Result};
use ksim::rules;
use ksim::srcgen::{render, RenderedCorpus, SrcGenConfig};
use lockdoc_core::checker::{check_rules_par, Verdict};
use lockdoc_core::derive::{derive_par, DeriveConfig};
use lockdoc_core::lint::{lint, LintInputs, StaticEvidence, StaticMemberEvidence};
use lockdoc_core::order::OrderGraph;
use lockdoc_core::race::find_races_par;
use lockdoc_core::rulespec::parse_rules;
use lockdoc_core::violation::find_violations_par;
use lockdoc_platform::json::{Json, ToJson};
use locksrc::{analyze_tree, MinerConfig, StaticReport};
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Collects `(relative path, content)` of every `.c`/`.h` file under
/// `root`, sorted by path — the deterministic input order the parser
/// expects.
pub fn collect_source_files(root: &Path) -> Result<Vec<(String, String)>> {
    if !root.exists() {
        return Err(CliError::Usage(format!(
            "no such directory: {}",
            root.display()
        )));
    }
    let mut out: Vec<(String, String)> = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(path) = stack.pop() {
        if path.is_dir() {
            for entry in fs::read_dir(&path)? {
                stack.push(entry?.path());
            }
        } else if matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("c") | Some("h")
        ) {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&path).unwrap_or_default()));
        }
    }
    out.sort();
    Ok(out)
}

/// Converts a static report into the per-member evidence shape
/// `core::lint` joins on.
pub fn to_static_evidence(report: &StaticReport) -> StaticEvidence {
    let mut members = StaticEvidence::default().members;
    for p in report.patterns.iter().filter(|p| p.outliers > 0) {
        members.push(StaticMemberEvidence {
            type_name: p.type_name.clone(),
            member_name: p.member.clone(),
            outliers: p.outliers,
            confidence: p.confidence,
        });
    }
    StaticEvidence { members }
}

/// `(type, member)` pairs flagged by the static report.
fn static_members(report: &StaticReport) -> BTreeSet<(String, String)> {
    report
        .findings
        .iter()
        .map(|f| (f.type_name.clone(), f.member.clone()))
        .collect()
}

/// The type prefix of an observation group name (`inode:ext4` →
/// `inode`).
fn group_type(group_name: &str) -> &str {
    group_name.split(':').next().unwrap_or(group_name)
}

struct PassJoin {
    name: &'static str,
    flagged: BTreeSet<(String, String)>,
}

fn percent(num: usize, den: usize) -> String {
    if den == 0 {
        "n/a".to_owned()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// `lockdoc xcheck`.
pub fn cmd_xcheck(args: &Args) -> Result<String> {
    let jobs = args.jobs()?;
    let cfg = MinerConfig::default();

    // Static side: an explicit source tree, or the seeded ground-truth
    // render (which brings the exact oracle along).
    let (files, oracle): (Vec<(String, String)>, Option<RenderedCorpus>) = match args.get("src") {
        Some(dir) => (collect_source_files(Path::new(dir))?, None),
        None => {
            let seed: u64 = args.num("seed", 42u64)?;
            let sites: u32 = args.num("sites-per-rule", 6u32)?;
            let corpus = render(&SrcGenConfig {
                seed,
                sites_per_rule: sites,
            });
            (corpus.files.clone(), Some(corpus))
        }
    };
    let report = analyze_tree(&files, &cfg, jobs);

    // Oracle score, when the source tree was rendered from ground truth.
    let oracle_score = oracle.as_ref().map(|corpus| {
        let planted = corpus.planted_sites();
        let reported: BTreeSet<(String, u32)> = report
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line))
            .collect();
        let matched = planted.intersection(&reported).count();
        (planted.len(), reported.len(), matched)
    });

    // Dynamic side, when a trace is supplied.
    let dynamic = match args.get("trace") {
        Some(path) => {
            let db = load_db_from(path, args)?;
            let t_ac: f64 = args.num("t-ac", 0.9f64)?;
            let mined = derive_par(&db, &DeriveConfig::with_threshold(t_ac), jobs);
            let parsed = parse_rules(rules::documented_rules())
                .map_err(|e| CliError::Rules(e.to_string()))?;
            let checked = check_rules_par(&db, &parsed, jobs);
            let violations = find_violations_par(&db, &mined, 3, jobs);
            let races = find_races_par(&db, jobs);
            let order = OrderGraph::build_par(&db, jobs);
            let statics = to_static_evidence(&report);
            let linted = lint(
                &db,
                &LintInputs {
                    mined: &mined,
                    checked: &checked,
                    violations: &violations,
                    races: &races,
                    order: &order,
                    statics: Some(&statics),
                },
                jobs,
            );

            let mut passes: Vec<PassJoin> = Vec::new();
            passes.push(PassJoin {
                name: "races",
                flagged: races
                    .groups
                    .iter()
                    .flat_map(|g| {
                        g.candidates
                            .iter()
                            .map(|c| (group_type(&g.group_name).to_owned(), c.member_name.clone()))
                    })
                    .collect(),
            });
            passes.push(PassJoin {
                name: "checker",
                flagged: checked
                    .iter()
                    .filter(|c| c.verdict == Verdict::Incorrect)
                    .map(|c| (c.rule.type_name.clone(), c.rule.member.clone()))
                    .collect(),
            });
            passes.push(PassJoin {
                name: "violations",
                flagged: violations
                    .iter()
                    .flat_map(|g| {
                        g.per_member
                            .iter()
                            .filter(|m| m.events > 0)
                            .map(|m| (group_type(&g.group_name).to_owned(), m.member_name.clone()))
                    })
                    .collect(),
            });
            passes.push(PassJoin {
                name: "lint",
                flagged: linted
                    .findings
                    .iter()
                    .map(|f| (group_type(&f.group_name).to_owned(), f.member_name.clone()))
                    .collect(),
            });
            Some(passes)
        }
        None => None,
    };

    let statics = static_members(&report);

    if args.has("json") {
        let mut fields = vec![("static", report.to_json())];
        if let Some((planted, reported, matched)) = oracle_score {
            fields.push((
                "oracle",
                Json::obj(vec![
                    ("planted", (planted as u64).to_json()),
                    ("reported", (reported as u64).to_json()),
                    ("matched", (matched as u64).to_json()),
                ]),
            ));
        }
        if let Some(passes) = &dynamic {
            fields.push((
                "passes",
                Json::Arr(
                    passes
                        .iter()
                        .map(|p| {
                            let overlap = p.flagged.intersection(&statics).count();
                            Json::obj(vec![
                                ("pass", p.name.to_json()),
                                ("flagged", (p.flagged.len() as u64).to_json()),
                                ("overlap", (overlap as u64).to_json()),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        return Ok(Json::obj(fields).pretty());
    }

    let mut out = report.render();
    if let Some((planted, reported, matched)) = oracle_score {
        out.push_str(&format!(
            "oracle: planted {planted}, reported {reported}, matched {matched} — \
             oracle precision: {}, oracle recall: {}\n",
            percent(matched, reported),
            percent(matched, planted)
        ));
    }
    if let Some(passes) = &dynamic {
        out.push_str(&format!(
            "cross-validation against the dynamic passes ({} static members):\n",
            statics.len()
        ));
        for p in passes {
            let overlap = p.flagged.intersection(&statics).count();
            out.push_str(&format!(
                "  {:<10} {} members flagged, {} overlap — precision {} (overlap/static), \
                 recall {} (overlap/pass)\n",
                p.name,
                p.flagged.len(),
                overlap,
                percent(overlap, statics.len()),
                percent(overlap, p.flagged.len())
            ));
        }
    }
    Ok(out)
}
