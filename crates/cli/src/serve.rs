//! `lockdoc serve`: a concurrent query daemon over a trace corpus.
//!
//! The daemon holds one immutable **snapshot** of the corpus: the
//! corpus-derived rules plus the race, lint, and lock-order reports of
//! the merged corpus trace, all pre-rendered in exactly the text formats
//! the batch subcommands print (the renderers are shared, so the formats
//! cannot drift). Queries are line-delimited JSON, one request per line,
//! one response per line:
//!
//! ```text
//! {"cmd": "derive"}            -> {"ok": true, "output": "<derive text>"}
//! {"cmd": "races"}             -> ... races text ...
//! {"cmd": "lint"}              -> ... lint text ...
//! {"cmd": "order"}             -> ... order text ...
//! {"cmd": "status"}            -> corpus health + group-reuse summary
//! {"cmd": "add", "path": "x"}  -> ingest a trace, swap in a new snapshot
//! {"cmd": "shutdown"}          -> stop the daemon
//! ```
//!
//! Concurrency: the snapshot sits behind an `RwLock<Arc<Snapshot>>`.
//! Readers clone the `Arc` and answer from the old snapshot while an
//! `add` (serialized by a separate ingest mutex) builds the next one off
//! to the side and swaps it in — queries never block on ingest. In
//! socket mode each connection gets its own thread; `--once` answers a
//! batch of requests from stdin (or `--input FILE`) and exits, so tests
//! and scripts need no real socket.

use crate::corpus::{corpus_summary, derive_members, load_corpus, CorpusCtx, LoadOpts};
use crate::{render_rules_text, Args, CliError, Result};
use ksim::rules;
use lockdoc_core::checker::check_rules_par;
use lockdoc_core::lint::{lint, LintInputs};
use lockdoc_core::order::OrderGraph;
use lockdoc_core::race::find_races_par;
use lockdoc_core::rulespec::parse_rules;
use lockdoc_core::violation::find_violations_par;
use lockdoc_platform::json::{self, Json};
use lockdoc_trace::db::import;
use lockdoc_trace::event::Trace;
use lockdoc_trace::merge::concat_traces_corpus;
use std::fs;
use std::io::Read;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One immutable, fully-rendered answer set over the corpus.
struct Snapshot {
    summary: String,
    groups_total: usize,
    groups_reused: usize,
    rules_text: String,
    races_text: String,
    lint_text: String,
    order_text: String,
}

/// Builds a snapshot: warm-load the corpus (cached matrices), derive
/// corpus rules group-incrementally, then import the merged trace once
/// for the whole-corpus race/lint/order passes.
fn build_snapshot(ctx: &CorpusCtx) -> Result<Snapshot> {
    let mut members = load_corpus(
        ctx,
        &LoadOpts {
            need_matrix: true,
            need_trace: true,
        },
    )?;
    let derived = derive_members(ctx, &members)?;
    let summary = corpus_summary(&members);
    let traces: Vec<Trace> = members.iter_mut().filter_map(|m| m.trace.take()).collect();
    if traces.is_empty() {
        return Err(CliError::Usage(
            "corpus has no analyzable traces (add .ldoc files first)".into(),
        ));
    }
    let merged =
        concat_traces_corpus(traces).map_err(|e| CliError::Usage(format!("corpus merge: {e}")))?;
    let db = import(&merged, &ctx.filter, ctx.jobs);
    let jobs = ctx.jobs;
    let mined = derived.rules;
    let parsed =
        parse_rules(rules::documented_rules()).map_err(|e| CliError::Rules(e.to_string()))?;
    let checked = check_rules_par(&db, &parsed, jobs);
    let violations = find_violations_par(&db, &mined, 3, jobs);
    let races = find_races_par(&db, jobs);
    let order = OrderGraph::build_par(&db, jobs);
    let report = lint(
        &db,
        &LintInputs {
            mined: &mined,
            checked: &checked,
            violations: &violations,
            races: &races,
            order: &order,
        },
        jobs,
    );
    Ok(Snapshot {
        summary,
        groups_total: derived.groups_total,
        groups_reused: derived.groups_reused,
        rules_text: render_rules_text(&mined, false),
        races_text: races.render(&db),
        lint_text: report.render(&db),
        order_text: order.report(&db),
    })
}

struct ServeState {
    ctx: CorpusCtx,
    snapshot: RwLock<Arc<Snapshot>>,
    ingest: Mutex<()>,
    shutdown: AtomicBool,
}

impl ServeState {
    fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().unwrap_or_else(|e| e.into_inner()))
    }
}

fn respond_ok(output: String) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("output", Json::Str(output)),
    ])
    .compact()
}

fn respond_err(error: String) -> String {
    Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::Str(error))]).compact()
}

/// Answers one request line; the bool asks the caller to stop serving.
fn handle_line(state: &ServeState, line: &str) -> (bool, String) {
    let req = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return (false, respond_err(format!("bad request: {e}"))),
    };
    let Some(cmd) = req.get("cmd").and_then(Json::as_str) else {
        return (false, respond_err("request needs a `cmd` string".into()));
    };
    match cmd {
        "derive" => (false, respond_ok(state.current().rules_text.clone())),
        "races" => (false, respond_ok(state.current().races_text.clone())),
        "lint" => (false, respond_ok(state.current().lint_text.clone())),
        "order" => (false, respond_ok(state.current().order_text.clone())),
        "status" => {
            let snap = state.current();
            (
                false,
                respond_ok(format!(
                    "{}\ngroups: {} total, {} reused\n",
                    snap.summary, snap.groups_total, snap.groups_reused
                )),
            )
        }
        "add" => {
            let Some(path) = req.get("path").and_then(Json::as_str) else {
                return (false, respond_err("add needs a `path` string".into()));
            };
            // Serialize ingests; queries keep answering from the current
            // snapshot the whole time.
            let _ingest = state.ingest.lock().unwrap_or_else(|e| e.into_inner());
            let added = match state.ctx.store.add(Path::new(path)) {
                Ok(n) => n,
                Err(e) => return (false, respond_err(e.to_string())),
            };
            match build_snapshot(&state.ctx) {
                Ok(snap) => {
                    *state.snapshot.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(snap);
                    (false, respond_ok(format!("added {added}")))
                }
                Err(e) => {
                    // A trace that breaks the merge must not wedge the
                    // corpus: roll the copy back and keep the old snapshot.
                    let _ = state.ctx.store.drop_trace(&added);
                    (false, respond_err(format!("rejected {added}: {e}")))
                }
            }
        }
        "shutdown" => {
            state.shutdown.store(true, Ordering::SeqCst);
            (true, respond_ok("shutting down".into()))
        }
        other => (false, respond_err(format!("unknown cmd `{other}`"))),
    }
}

/// `lockdoc serve`.
pub fn cmd_serve(args: &Args) -> Result<String> {
    let ctx = CorpusCtx::from_args(args)?;
    let state = ServeState {
        snapshot: RwLock::new(Arc::new(build_snapshot(&ctx)?)),
        ctx,
        ingest: Mutex::new(()),
        shutdown: AtomicBool::new(false),
    };
    if args.has("once") {
        let input = match args.get("input") {
            Some(f) => fs::read_to_string(f)?,
            None => {
                let mut s = String::new();
                std::io::stdin().read_to_string(&mut s)?;
                s
            }
        };
        let mut out = String::new();
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (stop, resp) = handle_line(&state, line);
            out.push_str(&resp);
            out.push('\n');
            if stop {
                break;
            }
        }
        return Ok(out);
    }
    serve_socket(args, state)
}

#[cfg(unix)]
fn serve_socket(args: &Args, state: ServeState) -> Result<String> {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::PathBuf;

    let sock_path: PathBuf = match args.get("socket") {
        Some(p) => PathBuf::from(p),
        None => state.ctx.store.cache_dir().join("lockdoc.sock"),
    };
    let _ = fs::remove_file(&sock_path);
    let listener = UnixListener::bind(&sock_path)?;
    let state = Arc::new(state);
    let mut served = 0usize;
    let mut handles = Vec::new();
    for conn in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        served += 1;
        let st = Arc::clone(&state);
        let unblock = sock_path.clone();
        handles.push(std::thread::spawn(move || {
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            let mut writer = stream;
            for line in BufReader::new(read_half).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let (stop, resp) = handle_line(&st, line.trim());
                if writeln!(writer, "{resp}").is_err() {
                    break;
                }
                if stop {
                    // Poke the accept loop so it observes the shutdown
                    // flag and exits instead of blocking forever.
                    let _ = UnixStream::connect(&unblock);
                    break;
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let _ = fs::remove_file(&sock_path);
    Ok(format!("served {served} connection(s)\n"))
}

#[cfg(not(unix))]
fn serve_socket(_args: &Args, _state: ServeState) -> Result<String> {
    Err(CliError::Usage(
        "socket mode needs unix domain sockets; use `serve --once` on this platform".into(),
    ))
}
