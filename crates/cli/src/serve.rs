//! `lockdoc serve`: a concurrent query daemon over a trace corpus.
//!
//! The daemon holds one immutable **snapshot** of the corpus: the
//! corpus-derived rules plus the race, lint, and lock-order reports of
//! the merged corpus trace, all pre-rendered in exactly the text formats
//! the batch subcommands print (the renderers are shared, so the formats
//! cannot drift). Queries are line-delimited JSON, one request per line,
//! one response per line:
//!
//! ```text
//! {"cmd": "derive"}            -> {"ok": true, "output": "<derive text>"}
//! {"cmd": "races"}             -> ... races text ...
//! {"cmd": "lint"}              -> ... lint text ...
//! {"cmd": "order"}             -> ... order text ...
//! {"cmd": "status"}            -> corpus health + group-reuse summary
//! {"cmd": "add", "path": "x"}  -> ingest a trace, swap in a new snapshot
//! {"cmd": "shutdown"}          -> stop the daemon
//! ```
//!
//! Concurrency: the snapshot sits behind an `RwLock<Arc<Snapshot>>`.
//! Readers clone the `Arc` and answer from the old snapshot while an
//! `add` (serialized by a separate ingest mutex) builds the next one off
//! to the side and swaps it in — queries never block on ingest. In
//! socket mode each connection gets its own thread; `--once` answers a
//! batch of requests from stdin (or `--input FILE`) and exits, so tests
//! and scripts need no real socket.
//!
//! Hostile-client hardening (all knobs overridable on the command line):
//!
//! * `--max-request-bytes` caps one request line; an oversized line gets
//!   an error response and is discarded in bounded chunks, so a client
//!   streaming gigabytes without a newline holds O(cap) memory.
//! * `--timeout-ms` sets per-connection read/write deadlines; a stalled
//!   or half-open connection is closed, which also bounds the shutdown
//!   drain (every worker thread is joined before the listener exits).
//! * `--max-conns` caps concurrent connections; excess clients receive
//!   one `server busy (RETRY)` shed response (`"retry": true`) and are
//!   disconnected instead of queueing unboundedly.
//! * every request is answered under `catch_unwind`, so a panicking
//!   handler costs that request an `internal error` response, never the
//!   daemon.
//! * transient ingest I/O errors retry with exponential backoff
//!   (`--ingest-retries`); permanent refusals (duplicate member, bad
//!   path) fail immediately.

use crate::corpus::{corpus_summary, derive_members, load_corpus, CorpusCtx, LoadOpts};
use crate::{render_rules_text, Args, CliError, Result};
use ksim::rules;
use lockdoc_core::checker::check_rules_par;
use lockdoc_core::lint::{lint, LintInputs};
use lockdoc_core::order::OrderGraph;
use lockdoc_core::race::find_races_par;
use lockdoc_core::rulespec::parse_rules;
use lockdoc_core::violation::find_violations_par;
use lockdoc_platform::json::{self, Json};
use lockdoc_trace::db::import;
use lockdoc_trace::event::Trace;
use lockdoc_trace::merge::concat_traces_corpus;
use std::fs;
use std::io::{self, BufRead, Read};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Per-connection / per-request limits (see the module docs).
pub(crate) struct ServeLimits {
    /// Hard cap on one request line, in bytes.
    pub max_request_bytes: usize,
    /// Socket read/write deadline, in milliseconds.
    pub timeout_ms: u64,
    /// Concurrent-connection cap; excess clients are shed.
    pub max_conns: usize,
    /// Retries (with backoff) for transient ingest I/O errors.
    pub ingest_retries: u64,
}

impl ServeLimits {
    fn from_args(args: &Args) -> Result<Self> {
        Ok(Self {
            max_request_bytes: args.num("max-request-bytes", 65_536usize)?,
            timeout_ms: args.num("timeout-ms", 5_000u64)?,
            max_conns: args.num("max-conns", 64usize)?,
            ingest_retries: args.num("ingest-retries", 2u64)?,
        })
    }
}

/// One request line read under the byte cap.
enum ReqLine {
    /// A complete line within the cap (newline stripped).
    Line(String),
    /// The line exceeded the cap; the excess was discarded unbuffered.
    Oversized,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line holding at most `cap + O(bufsize)`
/// bytes in memory. An over-cap line is drained chunk by chunk (never
/// buffered) up to its newline so the connection can keep serving.
fn read_bounded_line<R: BufRead>(r: &mut R, cap: usize) -> io::Result<ReqLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if oversized {
                ReqLine::Oversized
            } else if buf.is_empty() {
                ReqLine::Eof
            } else {
                ReqLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !oversized {
            if buf.len() + take > cap {
                oversized = true;
                buf = Vec::new(); // release, stay O(1) from here on
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        let consumed = newline.map_or(take, |i| i + 1);
        r.consume(consumed);
        if newline.is_some() {
            return Ok(if oversized {
                ReqLine::Oversized
            } else {
                ReqLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
    }
}

/// One immutable, fully-rendered answer set over the corpus.
struct Snapshot {
    summary: String,
    groups_total: usize,
    groups_reused: usize,
    rules_text: String,
    races_text: String,
    lint_text: String,
    order_text: String,
}

/// Builds a snapshot: warm-load the corpus (cached matrices), derive
/// corpus rules group-incrementally, then import the merged trace once
/// for the whole-corpus race/lint/order passes.
fn build_snapshot(ctx: &CorpusCtx) -> Result<Snapshot> {
    let mut members = load_corpus(
        ctx,
        &LoadOpts {
            need_matrix: true,
            need_trace: true,
        },
    )?;
    let derived = derive_members(ctx, &members)?;
    let summary = corpus_summary(&members);
    let traces: Vec<Trace> = members.iter_mut().filter_map(|m| m.trace.take()).collect();
    if traces.is_empty() {
        return Err(CliError::Usage(
            "corpus has no analyzable traces (add .ldoc files first)".into(),
        ));
    }
    let merged =
        concat_traces_corpus(traces).map_err(|e| CliError::Usage(format!("corpus merge: {e}")))?;
    let db = import(&merged, &ctx.filter, ctx.jobs);
    let jobs = ctx.jobs;
    let mined = derived.rules;
    let parsed =
        parse_rules(rules::documented_rules()).map_err(|e| CliError::Rules(e.to_string()))?;
    let checked = check_rules_par(&db, &parsed, jobs);
    let violations = find_violations_par(&db, &mined, 3, jobs);
    let races = find_races_par(&db, jobs);
    let order = OrderGraph::build_par(&db, jobs);
    let report = lint(
        &db,
        &LintInputs {
            mined: &mined,
            checked: &checked,
            violations: &violations,
            races: &races,
            order: &order,
            statics: None,
        },
        jobs,
    );
    Ok(Snapshot {
        summary,
        groups_total: derived.groups_total,
        groups_reused: derived.groups_reused,
        rules_text: render_rules_text(&mined, false),
        races_text: races.render(&db),
        lint_text: report.render(&db),
        order_text: order.report(&db),
    })
}

struct ServeState {
    ctx: CorpusCtx,
    limits: ServeLimits,
    snapshot: RwLock<Arc<Snapshot>>,
    ingest: Mutex<()>,
    shutdown: AtomicBool,
}

impl ServeState {
    fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().unwrap_or_else(|e| e.into_inner()))
    }
}

fn respond_ok(output: String) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("output", Json::Str(output)),
    ])
    .compact()
}

fn respond_err(error: String) -> String {
    Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::Str(error))]).compact()
}

/// The backpressure response an over-limit client receives before being
/// disconnected: `retry: true` tells it to back off and reconnect.
fn respond_shed() -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("server busy (RETRY)".into())),
        ("retry", Json::Bool(true)),
    ])
    .compact()
}

/// An ingest error worth retrying: anything except the store's permanent
/// refusals (duplicate member, missing or non-`.ldoc` source).
fn ingest_transient(e: &io::Error) -> bool {
    !matches!(
        e.kind(),
        io::ErrorKind::AlreadyExists | io::ErrorKind::NotFound | io::ErrorKind::InvalidInput
    )
}

/// Answers one request line with panic isolation: a panicking handler
/// costs this request an `internal error` response, never the daemon or
/// the connection.
fn handle_line_isolated(state: &ServeState, line: &str) -> (bool, String) {
    catch_unwind(AssertUnwindSafe(|| handle_line(state, line))).unwrap_or_else(|_| {
        (
            false,
            respond_err("internal error: request handler panicked".into()),
        )
    })
}

/// Answers one request line; the bool asks the caller to stop serving.
fn handle_line(state: &ServeState, line: &str) -> (bool, String) {
    let req = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return (false, respond_err(format!("bad request: {e}"))),
    };
    let Some(cmd) = req.get("cmd").and_then(Json::as_str) else {
        return (false, respond_err("request needs a `cmd` string".into()));
    };
    match cmd {
        "derive" => (false, respond_ok(state.current().rules_text.clone())),
        "races" => (false, respond_ok(state.current().races_text.clone())),
        "lint" => (false, respond_ok(state.current().lint_text.clone())),
        "order" => (false, respond_ok(state.current().order_text.clone())),
        "status" => {
            let snap = state.current();
            (
                false,
                respond_ok(format!(
                    "{}\ngroups: {} total, {} reused\ncache write errors: {}\n",
                    snap.summary,
                    snap.groups_total,
                    snap.groups_reused,
                    state.ctx.cache_write_errors()
                )),
            )
        }
        "add" => {
            let Some(path) = req.get("path").and_then(Json::as_str) else {
                return (false, respond_err("add needs a `path` string".into()));
            };
            // Serialize ingests; queries keep answering from the current
            // snapshot the whole time.
            let _ingest = state.ingest.lock().unwrap_or_else(|e| e.into_inner());
            // Transient I/O errors (a slow filesystem, a contended file)
            // retry with exponential backoff; permanent refusals do not.
            let mut attempt = 0u64;
            let added = loop {
                match state.ctx.store.add(Path::new(path)) {
                    Ok(n) => break n,
                    Err(e) if attempt < state.limits.ingest_retries && ingest_transient(&e) => {
                        attempt += 1;
                        std::thread::sleep(Duration::from_millis(5 << attempt));
                    }
                    Err(e) => return (false, respond_err(e.to_string())),
                }
            };
            match build_snapshot(&state.ctx) {
                Ok(snap) => {
                    *state.snapshot.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(snap);
                    (false, respond_ok(format!("added {added}")))
                }
                Err(e) => {
                    // A trace that breaks the merge must not wedge the
                    // corpus: roll the copy back and keep the old snapshot.
                    let _ = state.ctx.store.drop_trace(&added);
                    (false, respond_err(format!("rejected {added}: {e}")))
                }
            }
        }
        "shutdown" => {
            state.shutdown.store(true, Ordering::SeqCst);
            (true, respond_ok("shutting down".into()))
        }
        // Test-only hook proving per-request panic isolation end to end.
        #[cfg(debug_assertions)]
        "__panic" => panic!("injected panic (debug-only isolation probe)"),
        other => (false, respond_err(format!("unknown cmd `{other}`"))),
    }
}

/// `lockdoc serve`.
pub fn cmd_serve(args: &Args) -> Result<String> {
    let ctx = CorpusCtx::from_args(args)?;
    let state = ServeState {
        snapshot: RwLock::new(Arc::new(build_snapshot(&ctx)?)),
        ctx,
        limits: ServeLimits::from_args(args)?,
        ingest: Mutex::new(()),
        shutdown: AtomicBool::new(false),
    };
    if args.has("once") {
        let input = match args.get("input") {
            Some(f) => fs::read_to_string(f)?,
            None => {
                let mut s = String::new();
                std::io::stdin().read_to_string(&mut s)?;
                s
            }
        };
        let mut out = String::new();
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (stop, resp) = if line.len() > state.limits.max_request_bytes {
                (false, respond_err("request too large".into()))
            } else {
                handle_line_isolated(&state, line)
            };
            out.push_str(&resp);
            out.push('\n');
            if stop {
                break;
            }
        }
        return Ok(out);
    }
    serve_socket(args, state)
}

/// RAII occupancy of one connection slot; dropping frees the slot.
struct ConnSlot(Arc<AtomicUsize>);

impl ConnSlot {
    /// Claims a slot unless `max` are already active.
    fn acquire(active: &Arc<AtomicUsize>, max: usize) -> Option<Self> {
        active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < max).then_some(n + 1)
            })
            .ok()
            .map(|_| Self(Arc::clone(active)))
    }
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(unix)]
fn serve_socket(args: &Args, state: ServeState) -> Result<String> {
    use std::io::{BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::PathBuf;

    let sock_path: PathBuf = match args.get("socket") {
        Some(p) => PathBuf::from(p),
        None => state.ctx.store.cache_dir().join("lockdoc.sock"),
    };
    let _ = fs::remove_file(&sock_path);
    let listener = UnixListener::bind(&sock_path)?;
    let state = Arc::new(state);
    let active = Arc::new(AtomicUsize::new(0));
    let mut served = 0usize;
    let mut shed = 0usize;
    let mut handles = Vec::new();
    let timeout = Some(Duration::from_millis(state.limits.timeout_ms.max(1)));
    for conn in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Deadlines bound every read and write on the connection — a
        // stalled client times out and is dropped, which also bounds the
        // join-based drain below.
        let _ = stream.set_read_timeout(timeout);
        let _ = stream.set_write_timeout(timeout);
        let Some(slot) = ConnSlot::acquire(&active, state.limits.max_conns) else {
            // Over capacity: shed with one RETRY response, don't queue.
            shed += 1;
            let mut writer = stream;
            let _ = writeln!(writer, "{}", respond_shed());
            continue;
        };
        served += 1;
        let st = Arc::clone(&state);
        let unblock = sock_path.clone();
        handles.push(std::thread::spawn(move || {
            let _slot = slot;
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            let mut writer = stream;
            let mut reader = BufReader::new(read_half);
            loop {
                let (stop, resp) = match read_bounded_line(&mut reader, st.limits.max_request_bytes)
                {
                    Ok(ReqLine::Eof) => break,
                    Ok(ReqLine::Oversized) => (false, respond_err("request too large".into())),
                    Ok(ReqLine::Line(line)) if line.trim().is_empty() => continue,
                    Ok(ReqLine::Line(line)) => handle_line_isolated(&st, line.trim()),
                    Err(_) => break, // read deadline hit or connection died
                };
                if writeln!(writer, "{resp}").is_err() {
                    break;
                }
                if stop {
                    // Poke the accept loop so it observes the shutdown
                    // flag and exits instead of blocking forever.
                    let _ = UnixStream::connect(&unblock);
                    break;
                }
            }
        }));
    }
    // Graceful drain: every in-flight connection finishes (or times out)
    // before the listener exits and the socket file disappears.
    for h in handles {
        let _ = h.join();
    }
    let _ = fs::remove_file(&sock_path);
    Ok(format!("served {served} connection(s), shed {shed}\n"))
}

#[cfg(not(unix))]
fn serve_socket(_args: &Args, _state: ServeState) -> Result<String> {
    Err(CliError::Usage(
        "socket mode needs unix domain sockets; use `serve --once` on this platform".into(),
    ))
}
