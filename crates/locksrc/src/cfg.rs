//! Control-flow graphs over parsed function bodies.
//!
//! The lockset propagation (see [`crate::lockstate`]) is a classic
//! forward dataflow problem: it needs basic blocks of *linear* lock
//! operations, accesses and calls, with explicit edges for branches and
//! loops so joins can intersect. This module lowers the structured
//! [`crate::ast::Stmt`] tree into that form. Condition accesses execute
//! in the block that evaluates the condition (before the branch /
//! on every loop iteration), matching C evaluation order.

use crate::ast::{AccessKind, Function, LockTarget, Stmt};

/// One linear operation inside a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum Op<'a> {
    /// Lock acquire.
    Acquire {
        /// The lock operand.
        target: &'a LockTarget,
        /// Source line.
        line: u32,
    },
    /// Lock release.
    Release {
        /// The lock operand.
        target: &'a LockTarget,
        /// Source line.
        line: u32,
    },
    /// Struct-member access.
    Access {
        /// Instance variable.
        base: &'a str,
        /// Member name.
        member: &'a str,
        /// Read or write.
        kind: AccessKind,
        /// Source line.
        line: u32,
    },
    /// Call site.
    Call {
        /// Callee name.
        callee: &'a str,
        /// Positional arguments (bare identifiers only).
        args: &'a [Option<String>],
        /// Source line.
        line: u32,
    },
}

/// A basic block: linear ops plus successor edges.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct BasicBlock<'a> {
    /// Operations in execution order.
    pub ops: Vec<Op<'a>>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// A function's control-flow graph. Block 0 is the entry; `exit` is a
/// distinguished empty block every terminating path reaches.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg<'a> {
    /// Basic blocks; index 0 is the entry.
    pub blocks: Vec<BasicBlock<'a>>,
    /// Index of the exit block.
    pub exit: usize,
}

struct Builder<'a> {
    blocks: Vec<BasicBlock<'a>>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.blocks[from].succs.push(to);
    }

    /// Lowers `stmts` starting in block `cur`; returns the block that
    /// control falls out of.
    fn lower(&mut self, stmts: &'a [Stmt], mut cur: usize) -> usize {
        for s in stmts {
            match s {
                Stmt::Acquire { target, line, .. } => {
                    self.blocks[cur].ops.push(Op::Acquire {
                        target,
                        line: *line,
                    });
                }
                Stmt::Release { target, line, .. } => {
                    self.blocks[cur].ops.push(Op::Release {
                        target,
                        line: *line,
                    });
                }
                Stmt::Access {
                    base,
                    member,
                    kind,
                    line,
                } => {
                    self.blocks[cur].ops.push(Op::Access {
                        base,
                        member,
                        kind: *kind,
                        line: *line,
                    });
                }
                Stmt::Call { callee, args, line } => {
                    self.blocks[cur].ops.push(Op::Call {
                        callee,
                        args,
                        line: *line,
                    });
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    cur = self.lower(cond, cur);
                    let then_entry = self.new_block();
                    let else_entry = self.new_block();
                    self.edge(cur, then_entry);
                    self.edge(cur, else_entry);
                    let then_exit = self.lower(then_body, then_entry);
                    let else_exit = self.lower(else_body, else_entry);
                    let join = self.new_block();
                    self.edge(then_exit, join);
                    self.edge(else_exit, join);
                    cur = join;
                }
                Stmt::Loop { cond, body, .. } => {
                    // Dedicated header block: the back edge and the
                    // entry edge meet here, so the loop join intersects
                    // the pre-loop and end-of-body locksets.
                    let header = self.new_block();
                    self.edge(cur, header);
                    let header_end = self.lower(cond, header);
                    let body_entry = self.new_block();
                    let after = self.new_block();
                    self.edge(header_end, body_entry);
                    self.edge(header_end, after);
                    let body_exit = self.lower(body, body_entry);
                    self.edge(body_exit, header);
                    cur = after;
                }
                Stmt::Other => {}
            }
        }
        cur
    }
}

/// Builds the CFG for one function.
pub fn build(f: &Function) -> Cfg<'_> {
    let mut b = Builder { blocks: Vec::new() };
    let entry = b.new_block();
    debug_assert_eq!(entry, 0);
    let last = b.lower(&f.body, entry);
    let exit = b.new_block();
    b.edge(last, exit);
    Cfg {
        blocks: b.blocks,
        exit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_source;

    fn cfg_of(src: &str) -> (crate::ast::Function, usize) {
        let f = parse_source("t.c", src);
        let n = f.functions.len();
        (f.functions.into_iter().next().unwrap(), n)
    }

    #[test]
    fn straight_line_body_is_one_block_plus_exit() {
        let (f, n) = cfg_of(
            "static void f(struct inode *inode)\n{\n\tspin_lock(&inode->i_lock);\n\tinode->i_state = 1;\n\tspin_unlock(&inode->i_lock);\n}\n",
        );
        assert_eq!(n, 1);
        let cfg = build(&f);
        assert_eq!(cfg.blocks.len(), 2);
        assert_eq!(cfg.blocks[0].ops.len(), 3);
        assert_eq!(cfg.blocks[0].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_produces_diamond() {
        let (f, _) = cfg_of(
            "static void f(struct inode *inode, int c)\n{\n\tif (c) {\n\t\tinode->i_state = 1;\n\t} else {\n\t\tinode->i_state = 2;\n\t}\n}\n",
        );
        let cfg = build(&f);
        // entry, then, else, join, exit.
        assert_eq!(cfg.blocks.len(), 5);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
    }

    #[test]
    fn loop_has_back_edge_to_header() {
        let (f, _) = cfg_of(
            "static void f(struct inode *inode, int n)\n{\n\twhile (n) {\n\t\tinode->i_state = n;\n\t}\n}\n",
        );
        let cfg = build(&f);
        // Some block must have an edge back to an earlier block.
        let has_back_edge = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s <= i && s != cfg.exit));
        assert!(has_back_edge);
    }
}
