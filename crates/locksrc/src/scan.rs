//! A tokenizing scanner counting lock-initializer usage and effective LoC
//! in C source code.
//!
//! This is the measurement tool behind the paper's Fig. 1. It recognizes
//! both the runtime initializer calls (`spin_lock_init(&lock)`) and the
//! static definition macros (`DEFINE_SPINLOCK(lock)`), skips comments and
//! string literals, and counts effective lines of code the way `cloc`
//! does (non-empty, non-comment lines) — the paper counts LoC with cloc
//! and initializer *calls in the source code*.

/// Counters produced by one scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockUsageCounts {
    /// `spin_lock_init` + `DEFINE_SPINLOCK` + `__SPIN_LOCK_UNLOCKED`.
    pub spinlock_inits: u64,
    /// `mutex_init` + `DEFINE_MUTEX`.
    pub mutex_inits: u64,
    /// RCU usage: `rcu_read_lock` call sites (the paper plots RCU usage
    /// rather than initialization, as RCU has no per-instance init).
    pub rcu_usages: u64,
    /// `rwlock_init` + `DEFINE_RWLOCK`.
    pub rwlock_inits: u64,
    /// `init_rwsem` + `DECLARE_RWSEM`.
    pub rwsem_inits: u64,
    /// `seqlock_init` + `DEFINE_SEQLOCK`.
    pub seqlock_inits: u64,
    /// `sema_init` + `DEFINE_SEMAPHORE`.
    pub semaphore_inits: u64,
    /// Effective lines of code (non-blank, non-comment).
    pub loc: u64,
}

impl LockUsageCounts {
    /// Sum of all counted lock initializations (excluding RCU usages).
    pub fn total_inits(&self) -> u64 {
        self.spinlock_inits
            + self.mutex_inits
            + self.rwlock_inits
            + self.rwsem_inits
            + self.seqlock_inits
            + self.semaphore_inits
    }

    /// Adds another scan's counters (for per-file aggregation).
    pub fn merge(&mut self, other: &LockUsageCounts) {
        self.spinlock_inits += other.spinlock_inits;
        self.mutex_inits += other.mutex_inits;
        self.rcu_usages += other.rcu_usages;
        self.rwlock_inits += other.rwlock_inits;
        self.rwsem_inits += other.rwsem_inits;
        self.seqlock_inits += other.seqlock_inits;
        self.semaphore_inits += other.semaphore_inits;
        self.loc += other.loc;
    }
}

impl lockdoc_platform::json::ToJson for LockUsageCounts {
    fn to_json(&self) -> lockdoc_platform::json::Json {
        lockdoc_platform::json::Json::obj(vec![
            ("spinlock_inits", self.spinlock_inits.to_json()),
            ("mutex_inits", self.mutex_inits.to_json()),
            ("rcu_usages", self.rcu_usages.to_json()),
            ("rwlock_inits", self.rwlock_inits.to_json()),
            ("rwsem_inits", self.rwsem_inits.to_json()),
            ("seqlock_inits", self.seqlock_inits.to_json()),
            ("semaphore_inits", self.semaphore_inits.to_json()),
            ("loc", self.loc.to_json()),
        ])
    }
}

impl lockdoc_platform::json::FromJson for LockUsageCounts {
    fn from_json(
        v: &lockdoc_platform::json::Json,
    ) -> Result<Self, lockdoc_platform::json::JsonError> {
        use lockdoc_platform::json::decode_field;
        Ok(Self {
            spinlock_inits: decode_field(v, "spinlock_inits")?,
            mutex_inits: decode_field(v, "mutex_inits")?,
            rcu_usages: decode_field(v, "rcu_usages")?,
            rwlock_inits: decode_field(v, "rwlock_inits")?,
            rwsem_inits: decode_field(v, "rwsem_inits")?,
            seqlock_inits: decode_field(v, "seqlock_inits")?,
            semaphore_inits: decode_field(v, "semaphore_inits")?,
            loc: decode_field(v, "loc")?,
        })
    }
}

/// Identifier patterns counted per category. A hit requires the identifier
/// to appear as a whole token followed by `(` (macro or function call).
/// Raw spinlocks (`raw_spin_lock_init` / `DEFINE_RAW_SPINLOCK`) count as
/// spinlocks, matching how the paper's Fig. 1 aggregates the flavors.
const SPINLOCK_IDS: &[&str] = &[
    "spin_lock_init",
    "DEFINE_SPINLOCK",
    "__SPIN_LOCK_UNLOCKED",
    "raw_spin_lock_init",
    "DEFINE_RAW_SPINLOCK",
];
const MUTEX_IDS: &[&str] = &["mutex_init", "DEFINE_MUTEX", "__MUTEX_INITIALIZER"];
const RCU_IDS: &[&str] = &["rcu_read_lock", "rcu_read_lock_bh", "rcu_read_lock_sched"];
const RWLOCK_IDS: &[&str] = &["rwlock_init", "DEFINE_RWLOCK"];
const RWSEM_IDS: &[&str] = &["init_rwsem", "DECLARE_RWSEM", "__RWSEM_INITIALIZER"];
const SEQLOCK_IDS: &[&str] = &["seqlock_init", "DEFINE_SEQLOCK"];
const SEMAPHORE_IDS: &[&str] = &["sema_init", "DEFINE_SEMAPHORE"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment,
    StringLit,
    CharLit,
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Scans one source text and returns the usage counters.
///
/// The scanner is a small state machine over bytes: comments and literals
/// are skipped exactly (including escapes), identifiers are matched as
/// whole tokens, and a match only counts when followed (modulo whitespace)
/// by an opening parenthesis.
pub fn scan_source(src: &str) -> LockUsageCounts {
    let bytes = src.as_bytes();
    let mut counts = LockUsageCounts::default();
    let mut state = State::Code;
    let mut i = 0usize;
    let mut line_has_code = false;
    let mut line_started_in_block_comment = false;

    let match_category = |ident: &str| -> Option<usize> {
        // Returns the index of the matched category.
        if SPINLOCK_IDS.contains(&ident) {
            Some(0)
        } else if MUTEX_IDS.contains(&ident) {
            Some(1)
        } else if RCU_IDS.contains(&ident) {
            Some(2)
        } else if RWLOCK_IDS.contains(&ident) {
            Some(3)
        } else if RWSEM_IDS.contains(&ident) {
            Some(4)
        } else if SEQLOCK_IDS.contains(&ident) {
            Some(5)
        } else if SEMAPHORE_IDS.contains(&ident) {
            Some(6)
        } else {
            None
        }
    };

    while i < bytes.len() {
        let c = bytes[i];
        match state {
            State::Code => {
                if c == b'\n' {
                    if line_has_code {
                        counts.loc += 1;
                    }
                    line_has_code = false;
                    line_started_in_block_comment = false;
                    i += 1;
                } else if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment;
                    i += 2;
                } else if c == b'"' {
                    line_has_code = true;
                    state = State::StringLit;
                    i += 1;
                } else if c == b'\'' {
                    line_has_code = true;
                    state = State::CharLit;
                    i += 1;
                } else if is_ident_char(c) && !c.is_ascii_digit() {
                    line_has_code = true;
                    let start = i;
                    while i < bytes.len() && is_ident_char(bytes[i]) {
                        i += 1;
                    }
                    let ident = &src[start..i];
                    if let Some(cat) = match_category(ident) {
                        // Look ahead for `(` (allowing whitespace).
                        let mut j = i;
                        while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t') {
                            j += 1;
                        }
                        if bytes.get(j) == Some(&b'(') {
                            match cat {
                                0 => counts.spinlock_inits += 1,
                                1 => counts.mutex_inits += 1,
                                2 => counts.rcu_usages += 1,
                                3 => counts.rwlock_inits += 1,
                                4 => counts.rwsem_inits += 1,
                                5 => counts.seqlock_inits += 1,
                                _ => counts.semaphore_inits += 1,
                            }
                        }
                    }
                } else {
                    if !c.is_ascii_whitespace() {
                        line_has_code = true;
                    }
                    i += 1;
                }
            }
            State::LineComment => {
                if c == b'\n' {
                    state = State::Code;
                    // The newline itself is handled by the Code state rules:
                    if line_has_code {
                        counts.loc += 1;
                    }
                    line_has_code = false;
                    line_started_in_block_comment = false;
                }
                i += 1;
            }
            State::BlockComment => {
                if c == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::Code;
                    i += 2;
                } else {
                    if c == b'\n' {
                        if line_has_code {
                            counts.loc += 1;
                        }
                        line_has_code = false;
                        line_started_in_block_comment = true;
                    }
                    i += 1;
                }
            }
            State::StringLit => {
                if c == b'\\' {
                    i += 2;
                } else {
                    if c == b'"' {
                        state = State::Code;
                    }
                    i += 1;
                }
            }
            State::CharLit => {
                if c == b'\\' {
                    i += 2;
                } else {
                    if c == b'\'' {
                        state = State::Code;
                    }
                    i += 1;
                }
            }
        }
    }
    if line_has_code {
        counts.loc += 1;
    }
    let _ = line_started_in_block_comment;
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_counts_round_trip_through_json() {
        use lockdoc_platform::json::{parse, FromJson, ToJson};
        let c = scan_source("void f(void) { spin_lock_init(&a); mutex_init(&b); }\n");
        let text = c.to_json().pretty();
        let back = LockUsageCounts::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn counts_initializer_calls() {
        let src = r#"
static DEFINE_SPINLOCK(inode_hash_lock);
void setup(struct foo *f) {
    spin_lock_init(&f->lock);
    mutex_init(&f->mtx);
    rwlock_init(&f->rw);
    init_rwsem(&f->sem);
    seqlock_init(&f->seq);
    sema_init(&f->sema, 1);
}
"#;
        let c = scan_source(src);
        assert_eq!(c.spinlock_inits, 2);
        assert_eq!(c.mutex_inits, 1);
        assert_eq!(c.rwlock_inits, 1);
        assert_eq!(c.rwsem_inits, 1);
        assert_eq!(c.seqlock_inits, 1);
        assert_eq!(c.semaphore_inits, 1);
        assert_eq!(c.total_inits(), 7);
    }

    #[test]
    fn counts_raw_spinlock_variants() {
        let src = "static DEFINE_RAW_SPINLOCK(logbuf_lock);\n\
                   void setup(struct foo *f) {\n\traw_spin_lock_init(&f->raw);\n}\n";
        let c = scan_source(src);
        assert_eq!(c.spinlock_inits, 2);
    }

    #[test]
    fn ignores_comments_and_strings() {
        let src = r#"
/* spin_lock_init(&x) in a block comment */
// mutex_init(&y) in a line comment
const char *s = "spin_lock_init(&z)";
void f(void) { spin_lock_init(&real); }
"#;
        let c = scan_source(src);
        assert_eq!(c.spinlock_inits, 1);
        assert_eq!(c.mutex_inits, 0);
    }

    #[test]
    fn requires_call_syntax() {
        // A bare identifier (e.g. in a doc string or table) is not a call.
        let src = "int spin_lock_init;\nspin_lock_init (&a);\n";
        let c = scan_source(src);
        assert_eq!(c.spinlock_inits, 1);
    }

    #[test]
    fn does_not_match_identifier_substrings() {
        let src = "my_spin_lock_init(&a);\nspin_lock_init_late(&b);\n";
        let c = scan_source(src);
        assert_eq!(c.spinlock_inits, 0);
    }

    #[test]
    fn counts_effective_loc_like_cloc() {
        let src = "int a;\n\n/* comment\n   more comment */\nint b; // trailing\n";
        let c = scan_source(src);
        // `int a;` and `int b;` only.
        assert_eq!(c.loc, 2);
    }

    #[test]
    fn counts_rcu_usages() {
        let src = "void f(void){ rcu_read_lock(); rcu_read_unlock(); rcu_read_lock_bh(); }";
        let c = scan_source(src);
        assert_eq!(c.rcu_usages, 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = scan_source("spin_lock_init(&x);\n");
        let b = scan_source("mutex_init(&y);\nint z;\n");
        a.merge(&b);
        assert_eq!(a.spinlock_inits, 1);
        assert_eq!(a.mutex_inits, 1);
        assert_eq!(a.loc, 3);
    }

    #[test]
    fn handles_escapes_in_literals() {
        let src = "const char *s = \"\\\"mutex_init(\\\"\"; char c = '\\''; mutex_init(&m);\n";
        let c = scan_source(src);
        assert_eq!(c.mutex_inits, 1);
    }
}
