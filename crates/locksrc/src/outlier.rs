//! Per-(struct, member) outlier mining over the lockset observations.
//!
//! Following the outlier-based static approach (Dossche et al., see
//! PAPERS.md), the analysis assumes most call sites lock correctly: for
//! each `(type, member, access kind)` the *majority* normalized lockset
//! pattern is taken as the intended rule, and access sites whose held
//! set does not cover it become ranked findings. The confidence of a
//! finding is the majority's support ratio — a member locked
//! consistently at 19 of 20 sites makes the 20th site a much stronger
//! finding than an 11-of-20 split would.
//!
//! Mining is sharded per member group on [`lockdoc_platform::par`] and
//! every report is JSON round-trippable through the in-tree codec, so
//! `lockdoc xcheck --json` output is loss-free and byte-identical at
//! any `--jobs`.

use crate::ast::{self, AccessKind};
use crate::lockstate::{self, AccessObservation, AnalysisConfig};
use lockdoc_platform::json::{decode_field, FromJson, Json, JsonError, ToJson};
use lockdoc_platform::par::par_map;
use std::collections::BTreeMap;

/// Tuning for the outlier miner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinerConfig {
    /// Minimum support ratio of the majority pattern; below this no
    /// pattern is trusted and no outliers are reported for the member.
    pub majority_threshold: f64,
    /// Minimum number of observations for a member to be mined at all.
    pub min_observations: u64,
    /// Lockset propagation knobs.
    pub analysis: AnalysisConfig,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            majority_threshold: 0.7,
            min_observations: 3,
            analysis: AnalysisConfig::default(),
        }
    }
}

/// The mined majority pattern for one `(type, member, kind)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberPattern {
    /// Struct type name.
    pub type_name: String,
    /// Member name.
    pub member: String,
    /// Access kind, `"r"` or `"w"`.
    pub kind: String,
    /// Majority lockset pattern (sorted, `+`-joined; `(none)` when the
    /// majority holds nothing).
    pub majority: String,
    /// Observations matching (covering) the majority pattern.
    pub support: u64,
    /// Total observations of the member/kind.
    pub total: u64,
    /// `support / total`.
    pub confidence: f64,
    /// Deviating observations.
    pub outliers: u64,
}

/// One deviating access site, in one witness context.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierFinding {
    /// Struct type name.
    pub type_name: String,
    /// Member name.
    pub member: String,
    /// Access kind, `"r"` or `"w"`.
    pub kind: String,
    /// File containing the deviating access.
    pub file: String,
    /// 1-based line of the deviating access.
    pub line: u32,
    /// The majority pattern the site should have held.
    pub expected: String,
    /// What the site actually held.
    pub observed: String,
    /// Majority support ratio backing the finding.
    pub confidence: f64,
    /// Witness call path (root first) reaching the site unprotected.
    pub path: Vec<String>,
}

/// The full static-analysis report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StaticReport {
    /// Files parsed.
    pub files: u64,
    /// Function definitions found.
    pub functions: u64,
    /// Access observations (site × context).
    pub sites: u64,
    /// Mined member patterns, in (type, member, kind) order.
    pub patterns: Vec<MemberPattern>,
    /// Outlier findings, ranked by confidence (then site order).
    pub findings: Vec<OutlierFinding>,
}

impl StaticReport {
    /// Distinct `(type, member)` pairs with at least one finding.
    pub fn flagged_members(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .findings
            .iter()
            .map(|f| (f.type_name.clone(), f.member.clone()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "static lockset analysis: {} files, {} functions, {} observations, \
             {} member patterns, {} outliers ({} members)",
            self.files,
            self.functions,
            self.sites,
            self.patterns.len(),
            self.findings.len(),
            self.flagged_members().len()
        );
        for p in self.patterns.iter().filter(|p| p.outliers > 0) {
            let _ = writeln!(
                out,
                "pattern {}.{}:{} = {} (support {}/{}, confidence {:.2}) — {} outliers",
                p.type_name,
                p.member,
                p.kind,
                p.majority,
                p.support,
                p.total,
                p.confidence,
                p.outliers
            );
        }
        for f in &self.findings {
            let _ = writeln!(
                out,
                "OUTLIER {}.{}:{} at {}:{}: expected {}, saw {} [confidence {:.2}] via {}",
                f.type_name,
                f.member,
                f.kind,
                f.file,
                f.line,
                f.expected,
                f.observed,
                f.confidence,
                f.path.join(" -> ")
            );
        }
        out
    }
}

impl ToJson for MemberPattern {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type_name", self.type_name.to_json()),
            ("member", self.member.to_json()),
            ("kind", self.kind.to_json()),
            ("majority", self.majority.to_json()),
            ("support", self.support.to_json()),
            ("total", self.total.to_json()),
            ("confidence", self.confidence.to_json()),
            ("outliers", self.outliers.to_json()),
        ])
    }
}

impl FromJson for MemberPattern {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(MemberPattern {
            type_name: decode_field(v, "type_name")?,
            member: decode_field(v, "member")?,
            kind: decode_field(v, "kind")?,
            majority: decode_field(v, "majority")?,
            support: decode_field(v, "support")?,
            total: decode_field(v, "total")?,
            confidence: decode_field(v, "confidence")?,
            outliers: decode_field(v, "outliers")?,
        })
    }
}

impl ToJson for OutlierFinding {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type_name", self.type_name.to_json()),
            ("member", self.member.to_json()),
            ("kind", self.kind.to_json()),
            ("file", self.file.to_json()),
            ("line", u64::from(self.line).to_json()),
            ("expected", self.expected.to_json()),
            ("observed", self.observed.to_json()),
            ("confidence", self.confidence.to_json()),
            ("path", self.path.to_json()),
        ])
    }
}

impl FromJson for OutlierFinding {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let line: u64 = decode_field(v, "line")?;
        Ok(OutlierFinding {
            type_name: decode_field(v, "type_name")?,
            member: decode_field(v, "member")?,
            kind: decode_field(v, "kind")?,
            file: decode_field(v, "file")?,
            line: line as u32,
            expected: decode_field(v, "expected")?,
            observed: decode_field(v, "observed")?,
            confidence: decode_field(v, "confidence")?,
            path: decode_field(v, "path")?,
        })
    }
}

impl ToJson for StaticReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("files", self.files.to_json()),
            ("functions", self.functions.to_json()),
            ("sites", self.sites.to_json()),
            ("patterns", self.patterns.to_json()),
            ("findings", self.findings.to_json()),
        ])
    }
}

impl FromJson for StaticReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(StaticReport {
            files: decode_field(v, "files")?,
            functions: decode_field(v, "functions")?,
            sites: decode_field(v, "sites")?,
            patterns: decode_field(v, "patterns")?,
            findings: decode_field(v, "findings")?,
        })
    }
}

/// Canonical pattern string of a normalized lockset.
fn pattern_string(held: &[String]) -> String {
    if held.is_empty() {
        "(none)".to_owned()
    } else {
        held.join(" + ")
    }
}

/// True when `held` covers every lock of the (non-empty) majority.
fn covers(held: &[String], majority: &[String]) -> bool {
    majority.iter().all(|l| held.contains(l))
}

/// Mines majority patterns and outliers from observations. Sharded per
/// `(type, member, kind)` group; deterministic at any `jobs`.
pub fn mine_outliers(
    observations: &[AccessObservation],
    cfg: &MinerConfig,
    jobs: usize,
) -> (Vec<MemberPattern>, Vec<OutlierFinding>) {
    let mut groups: BTreeMap<(&str, &str, AccessKind), Vec<&AccessObservation>> = BTreeMap::new();
    for o in observations {
        groups
            .entry((o.type_name.as_str(), o.member.as_str(), o.kind))
            .or_default()
            .push(o);
    }
    let entries: Vec<_> = groups.iter().collect();
    let mined = par_map(jobs, &entries, |&(&(type_name, member, kind), obs)| {
        let total = obs.len() as u64;
        if total < cfg.min_observations {
            return (None, Vec::new());
        }
        // Count pattern frequencies; tie-break on the lexicographically
        // smaller pattern for determinism.
        let mut counts: BTreeMap<&[String], u64> = BTreeMap::new();
        for o in obs {
            *counts.entry(o.held.as_slice()).or_default() += 1;
        }
        let (majority, support) = counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(&p, &c)| (p, c))
            .expect("non-empty group");
        // Support counts every observation covering the majority (a
        // site holding extra locks is not an outlier).
        let covering = obs.iter().filter(|o| covers(&o.held, majority)).count() as u64;
        let confidence = covering as f64 / total as f64;
        if majority.is_empty() || confidence < cfg.majority_threshold {
            let _ = support;
            return (None, Vec::new());
        }
        let mut findings: Vec<OutlierFinding> = Vec::new();
        for o in obs.iter().filter(|o| !covers(&o.held, majority)) {
            findings.push(OutlierFinding {
                type_name: type_name.to_owned(),
                member: member.to_owned(),
                kind: kind.to_string(),
                file: o.file.clone(),
                line: o.line,
                expected: pattern_string(majority),
                observed: pattern_string(&o.held),
                confidence,
                path: o.path.clone(),
            });
        }
        // One finding per (site, observed pattern): keep the shortest
        // witness path (observations are pre-sorted, so ties break
        // deterministically).
        findings.sort_by(|a, b| {
            (&a.file, a.line, &a.observed, a.path.len(), &a.path).cmp(&(
                &b.file,
                b.line,
                &b.observed,
                b.path.len(),
                &b.path,
            ))
        });
        findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.observed == b.observed);
        let pattern = MemberPattern {
            type_name: type_name.to_owned(),
            member: member.to_owned(),
            kind: kind.to_string(),
            majority: pattern_string(majority),
            support: covering,
            total,
            confidence,
            outliers: findings.len() as u64,
        };
        (Some(pattern), findings)
    });
    let mut patterns = Vec::new();
    let mut findings = Vec::new();
    for (p, mut f) in mined {
        if let Some(p) = p {
            patterns.push(p);
        }
        findings.append(&mut f);
    }
    // Rank: strongest confidence first, then canonical site order.
    findings.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                (&a.type_name, &a.member, &a.kind, &a.file, a.line).cmp(&(
                    &b.type_name,
                    &b.member,
                    &b.kind,
                    &b.file,
                    b.line,
                ))
            })
    });
    (patterns, findings)
}

/// Runs the whole static pipeline — parse, propagate, mine — over a
/// `(path, content)` tree. Byte-identical at any `jobs`.
pub fn analyze_tree(files: &[(String, String)], cfg: &MinerConfig, jobs: usize) -> StaticReport {
    let program = ast::parse_tree(files, jobs);
    let observations = lockstate::collect_observations(&program, &cfg.analysis, jobs);
    let (patterns, findings) = mine_outliers(&observations, cfg, jobs);
    StaticReport {
        files: program.files.len() as u64,
        functions: program.function_count() as u64,
        sites: observations.len() as u64,
        patterns,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten correctly locked writers and one lockless one.
    fn corpus_with_one_outlier() -> Vec<(String, String)> {
        let mut src = String::new();
        for i in 0..10 {
            src.push_str(&format!(
                "static void set_state_{i}(struct inode *inode)\n{{\n\
                 \tspin_lock(&inode->i_lock);\n\tinode->i_state = {i};\n\
                 \tspin_unlock(&inode->i_lock);\n}}\n"
            ));
        }
        src.push_str(
            "static void set_state_raw(struct inode *inode)\n{\n\tinode->i_state = 99;\n}\n",
        );
        vec![("fs/inode.c".to_owned(), src)]
    }

    #[test]
    fn majority_pattern_wins_and_outlier_is_found() {
        let report = analyze_tree(&corpus_with_one_outlier(), &MinerConfig::default(), 1);
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert_eq!(f.member, "i_state");
        assert_eq!(f.expected, "ES(i_lock)");
        assert_eq!(f.observed, "(none)");
        assert_eq!(f.path, vec!["set_state_raw"]);
        assert!((f.confidence - 10.0 / 11.0).abs() < 1e-9);
        let p = report
            .patterns
            .iter()
            .find(|p| p.member == "i_state")
            .unwrap();
        assert_eq!(p.support, 10);
        assert_eq!(p.total, 11);
        assert_eq!(p.outliers, 1);
    }

    #[test]
    fn extra_locks_are_not_outliers() {
        let mut files = corpus_with_one_outlier();
        files[0].1.push_str(
            "static void set_state_extra(struct inode *inode)\n{\n\
             \tspin_lock(&inode_hash_lock);\n\tspin_lock(&inode->i_lock);\n\
             \tinode->i_state = 1;\n\
             \tspin_unlock(&inode->i_lock);\n\tspin_unlock(&inode_hash_lock);\n}\n",
        );
        let report = analyze_tree(&files, &MinerConfig::default(), 1);
        assert_eq!(report.findings.len(), 1, "only the lockless site");
        let p = report
            .patterns
            .iter()
            .find(|p| p.member == "i_state")
            .unwrap();
        assert_eq!(p.support, 11, "superset sites count as covering");
    }

    #[test]
    fn low_support_members_are_not_mined() {
        // 50/50 split: no trustworthy majority, no findings.
        let src = "static void a(struct inode *inode)\n{\n\
                   \tspin_lock(&inode->i_lock);\n\tinode->i_size = 1;\n\tspin_unlock(&inode->i_lock);\n}\n\
                   static void b(struct inode *inode)\n{\n\
                   \tspin_lock(&inode->i_lock);\n\tinode->i_size = 2;\n\tspin_unlock(&inode->i_lock);\n}\n\
                   static void c(struct inode *inode)\n{\n\tinode->i_size = 3;\n}\n\
                   static void d(struct inode *inode)\n{\n\tinode->i_size = 4;\n}\n";
        let report = analyze_tree(
            &[("x.c".to_owned(), src.to_owned())],
            &MinerConfig::default(),
            1,
        );
        assert!(report.findings.is_empty());
    }

    #[test]
    fn empty_majority_yields_no_findings() {
        // Most sites hold nothing: nothing to deviate from.
        let src = "static void a(struct inode *inode)\n{\n\tinode->i_ino = 1;\n}\n\
                   static void b(struct inode *inode)\n{\n\tinode->i_ino = 2;\n}\n\
                   static void c(struct inode *inode)\n{\n\tinode->i_ino = 3;\n}\n\
                   static void d(struct inode *inode)\n{\n\
                   \tspin_lock(&inode->i_lock);\n\tinode->i_ino = 4;\n\tspin_unlock(&inode->i_lock);\n}\n";
        let report = analyze_tree(
            &[("y.c".to_owned(), src.to_owned())],
            &MinerConfig::default(),
            1,
        );
        assert!(report.findings.is_empty());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = analyze_tree(&corpus_with_one_outlier(), &MinerConfig::default(), 1);
        let text = lockdoc_platform::json::to_string_pretty(&report);
        let back: StaticReport = lockdoc_platform::json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn analysis_is_jobs_invariant() {
        let mut files = corpus_with_one_outlier();
        files.push((
            "fs/dentry.c".to_owned(),
            "static void d0(struct dentry *dentry)\n{\n\
             \tspin_lock(&dentry->d_lock);\n\tdentry->d_flags = 1;\n\tspin_unlock(&dentry->d_lock);\n}\n\
             static void d1(struct dentry *dentry)\n{\n\
             \tspin_lock(&dentry->d_lock);\n\tdentry->d_flags = 2;\n\tspin_unlock(&dentry->d_lock);\n}\n\
             static void d2(struct dentry *dentry)\n{\n\
             \tspin_lock(&dentry->d_lock);\n\tdentry->d_flags = 3;\n\tspin_unlock(&dentry->d_lock);\n}\n\
             static void d3(struct dentry *dentry)\n{\n\tdentry->d_flags = 4;\n}\n"
                .to_owned(),
        ));
        let serial = analyze_tree(&files, &MinerConfig::default(), 1);
        for jobs in [2, 4, 8] {
            assert_eq!(analyze_tree(&files, &MinerConfig::default(), jobs), serial);
        }
    }
}
