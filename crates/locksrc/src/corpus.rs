//! Synthetic kernel-source corpus generation, calibrated to the growth the
//! paper reports for Linux v3.0 … v4.18 (Fig. 1 and Sec. 2.1): +81 %
//! mutex initializations, +45 % spinlock initializations (with a slight
//! dip over the final releases), and +73 % lines of code over the span.
//!
//! The generated trees are real C-like source; the [`crate::scan`] scanner
//! measures them exactly as it would measure an actual checkout, so the
//! Fig. 1 experiment exercises the genuine measurement path. Counts are
//! scaled down by [`CorpusSpec::SCALE`] to keep generation fast; the
//! reported curves are scale-invariant.

use crate::scan::LockUsageCounts;
use lockdoc_platform::rng::Rng;
use std::fmt::Write as _;

/// Fig. 1 anchor data per release: target counts in the *real* kernel.
/// Intermediate releases are interpolated between the published endpoints
/// (spinlocks ≈ 4100 → ≈ 6000 with a late dip, mutexes ≈ 1550 → ≈ 2800,
/// RCU ≈ 1200 → ≈ 3000, LoC 9.6 M → 16.6 M).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReleasePoint {
    /// Release tag, e.g. `v3.0`.
    pub tag: &'static str,
    /// Spinlock initializations in the full tree.
    pub spinlocks: u64,
    /// Mutex initializations.
    pub mutexes: u64,
    /// RCU read-side usages.
    pub rcu: u64,
    /// Total lines of code.
    pub loc: u64,
}

/// The 19 major releases of the paper's Fig. 1 x-axis.
pub const RELEASES: &[ReleasePoint] = &[
    ReleasePoint {
        tag: "v3.0",
        spinlocks: 4140,
        mutexes: 1550,
        rcu: 1210,
        loc: 9_610_000,
    },
    ReleasePoint {
        tag: "v3.2",
        spinlocks: 4290,
        mutexes: 1640,
        rcu: 1340,
        loc: 10_040_000,
    },
    ReleasePoint {
        tag: "v3.4",
        spinlocks: 4420,
        mutexes: 1730,
        rcu: 1480,
        loc: 10_430_000,
    },
    ReleasePoint {
        tag: "v3.6",
        spinlocks: 4560,
        mutexes: 1820,
        rcu: 1620,
        loc: 10_840_000,
    },
    ReleasePoint {
        tag: "v3.8",
        spinlocks: 4700,
        mutexes: 1910,
        rcu: 1760,
        loc: 11_260_000,
    },
    ReleasePoint {
        tag: "v3.10",
        spinlocks: 4840,
        mutexes: 2000,
        rcu: 1890,
        loc: 11_680_000,
    },
    ReleasePoint {
        tag: "v3.12",
        spinlocks: 4990,
        mutexes: 2090,
        rcu: 2020,
        loc: 12_090_000,
    },
    ReleasePoint {
        tag: "v3.14",
        spinlocks: 5140,
        mutexes: 2170,
        rcu: 2140,
        loc: 12_500_000,
    },
    ReleasePoint {
        tag: "v3.16",
        spinlocks: 5290,
        mutexes: 2250,
        rcu: 2260,
        loc: 12_900_000,
    },
    ReleasePoint {
        tag: "v3.18",
        spinlocks: 5430,
        mutexes: 2330,
        rcu: 2380,
        loc: 13_290_000,
    },
    ReleasePoint {
        tag: "v4.0",
        spinlocks: 5570,
        mutexes: 2410,
        rcu: 2490,
        loc: 13_690_000,
    },
    ReleasePoint {
        tag: "v4.2",
        spinlocks: 5710,
        mutexes: 2480,
        rcu: 2590,
        loc: 14_090_000,
    },
    ReleasePoint {
        tag: "v4.4",
        spinlocks: 5840,
        mutexes: 2550,
        rcu: 2680,
        loc: 14_480_000,
    },
    ReleasePoint {
        tag: "v4.6",
        spinlocks: 5960,
        mutexes: 2610,
        rcu: 2760,
        loc: 14_860_000,
    },
    ReleasePoint {
        tag: "v4.8",
        spinlocks: 6060,
        mutexes: 2670,
        rcu: 2830,
        loc: 15_230_000,
    },
    ReleasePoint {
        tag: "v4.10",
        spinlocks: 6120,
        mutexes: 2720,
        rcu: 2890,
        loc: 15_590_000,
    },
    ReleasePoint {
        tag: "v4.12",
        spinlocks: 6150,
        mutexes: 2760,
        rcu: 2940,
        loc: 15_940_000,
    },
    ReleasePoint {
        tag: "v4.14",
        spinlocks: 6110,
        mutexes: 2780,
        rcu: 2980,
        loc: 16_280_000,
    },
    // The paper notes a slight spinlock decrease over the last releases.
    ReleasePoint {
        tag: "v4.18",
        spinlocks: 6010,
        mutexes: 2805,
        rcu: 3020,
        loc: 16_620_000,
    },
];

/// A generated source tree: named files with C-like content.
#[derive(Debug, Clone, Default)]
pub struct SourceTree {
    /// `(path, content)` pairs.
    pub files: Vec<(String, String)>,
}

impl SourceTree {
    /// All file contents joined (convenient for whole-tree scans).
    pub fn concatenated(&self) -> String {
        let mut out = String::new();
        for (_, content) in &self.files {
            out.push_str(content);
            out.push('\n');
        }
        out
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// Generation parameters for one release's tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// The release anchor this tree models.
    pub point: ReleasePoint,
}

impl CorpusSpec {
    /// Down-scaling factor applied to the real-kernel counts (the curves
    /// in Fig. 1 are ratios; generating 16 M LoC would be pointless).
    pub const SCALE: u64 = 50;

    /// Spec for a release tag.
    pub fn for_release(tag: &str) -> Option<Self> {
        RELEASES
            .iter()
            .find(|r| r.tag == tag)
            .map(|&point| CorpusSpec { point })
    }

    /// Target counts after scaling (rounded, so growth ratios survive).
    pub fn scaled_targets(&self) -> LockUsageCounts {
        let scale = |x: u64| (x + Self::SCALE / 2) / Self::SCALE;
        LockUsageCounts {
            spinlock_inits: scale(self.point.spinlocks),
            mutex_inits: scale(self.point.mutexes),
            rcu_usages: scale(self.point.rcu),
            loc: scale(self.point.loc),
            ..LockUsageCounts::default()
        }
    }

    /// Generates the synthetic tree for this release.
    ///
    /// The same `seed` always produces the same tree. Files contain
    /// realistic-looking subsystem code: struct definitions, initializer
    /// calls in init functions, critical sections, comments (which must
    /// *not* be counted), and filler logic making up the LoC budget.
    pub fn generate(&self, seed: u64) -> SourceTree {
        let targets = self.scaled_targets();
        let mut rng = Rng::seed_from_u64(seed ^ self.point.loc);
        let mut tree = SourceTree::default();

        let mut remaining_spin = targets.spinlock_inits;
        let mut remaining_mutex = targets.mutex_inits;
        let mut remaining_rcu = targets.rcu_usages;
        let mut remaining_loc = targets.loc as i64;

        let mut file_idx = 0usize;
        while remaining_spin > 0 || remaining_mutex > 0 || remaining_rcu > 0 || remaining_loc > 0 {
            let spin = remaining_spin.min(rng.gen_range(0..4));
            let mutex = remaining_mutex.min(rng.gen_range(0..3));
            let rcu = remaining_rcu.min(rng.gen_range(0..3));
            remaining_spin -= spin;
            remaining_mutex -= mutex;
            remaining_rcu -= rcu;
            let (content, loc) = generate_file(&mut rng, file_idx, spin, mutex, rcu, remaining_loc);
            remaining_loc -= loc as i64;
            tree.files
                .push((format!("drivers/gen/file{file_idx:04}.c"), content));
            file_idx += 1;
            if file_idx > 100_000 {
                break; // safety net; never reached with sane targets
            }
        }
        tree
    }
}

/// Emits one synthetic C file containing exactly the requested initializer
/// calls plus filler code. Returns `(content, effective loc)`.
fn generate_file(
    rng: &mut Rng,
    idx: usize,
    spinlocks: u64,
    mutexes: u64,
    rcu: u64,
    loc_budget: i64,
) -> (String, u64) {
    let mut out = String::new();
    let mut loc = 0u64;
    let _ = writeln!(out, "/* Autogenerated subsystem shard {idx}. */");
    let _ = writeln!(out, "#include <linux/module.h>");
    loc += 1;

    for i in 0..spinlocks {
        if rng.gen_bool(0.3) {
            let _ = writeln!(out, "static DEFINE_SPINLOCK(shard{idx}_lock{i});");
            loc += 1;
        } else {
            let _ = writeln!(out, "static void shard{idx}_init_s{i}(struct ctx *c)");
            let _ = writeln!(out, "{{");
            let _ = writeln!(out, "\tspin_lock_init(&c->lock{i});");
            let _ = writeln!(out, "}}");
            loc += 4;
        }
    }
    for i in 0..mutexes {
        if rng.gen_bool(0.3) {
            let _ = writeln!(out, "static DEFINE_MUTEX(shard{idx}_mtx{i});");
            loc += 1;
        } else {
            let _ = writeln!(out, "static void shard{idx}_init_m{i}(struct ctx *c)");
            let _ = writeln!(out, "{{");
            let _ = writeln!(out, "\tmutex_init(&c->mtx{i});");
            let _ = writeln!(out, "}}");
            loc += 4;
        }
    }
    for i in 0..rcu {
        let _ = writeln!(out, "static int shard{idx}_reader{i}(struct ctx *c)");
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "\tint v;");
        let _ = writeln!(out, "\trcu_read_lock();");
        let _ = writeln!(out, "\tv = c->value;");
        let _ = writeln!(out, "\trcu_read_unlock();");
        let _ = writeln!(out, "\treturn v;");
        let _ = writeln!(out, "}}");
        loc += 8;
    }

    // Filler logic to meet the LoC budget for this file: a handful of
    // helper functions with comments interspersed (comments must not be
    // counted by the scanner).
    let filler_lines = (loc_budget.max(0) as u64).min(rng.gen_range(40..120));
    let mut emitted = 0u64;
    let mut fn_no = 0usize;
    while emitted < filler_lines {
        let body = rng.gen_range(3..9).min(filler_lines - emitted + 3);
        let _ = writeln!(out, "/* helper {fn_no}: housekeeping. */");
        let _ = writeln!(out, "static int shard{idx}_helper{fn_no}(int x)");
        let _ = writeln!(out, "{{");
        emitted += 2;
        for l in 0..body {
            let _ = writeln!(out, "\tx += {l}; /* step */");
            emitted += 1;
        }
        let _ = writeln!(out, "\treturn x;");
        let _ = writeln!(out, "}}");
        emitted += 2;
        fn_no += 1;
    }
    loc += emitted;
    (out, loc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    #[test]
    fn releases_cover_the_papers_span() {
        assert_eq!(RELEASES.first().unwrap().tag, "v3.0");
        assert_eq!(RELEASES.last().unwrap().tag, "v4.18");
        assert_eq!(RELEASES.len(), 19);
    }

    #[test]
    fn growth_matches_published_percentages() {
        let first = RELEASES.first().unwrap();
        let last = RELEASES.last().unwrap();
        let pct = |a: u64, b: u64| (b as f64 - a as f64) / a as f64 * 100.0;
        // Paper Sec. 2.1: mutexes +81 %, spinlocks +45 %, LoC +73 %.
        assert!((pct(first.mutexes, last.mutexes) - 81.0).abs() < 2.0);
        assert!((pct(first.spinlocks, last.spinlocks) - 45.0).abs() < 2.0);
        assert!((pct(first.loc, last.loc) - 73.0).abs() < 2.0);
    }

    #[test]
    fn spinlocks_dip_over_the_last_releases() {
        let n = RELEASES.len();
        assert!(RELEASES[n - 1].spinlocks < RELEASES[n - 3].spinlocks);
    }

    #[test]
    fn generated_tree_scans_to_the_scaled_targets() {
        let spec = CorpusSpec::for_release("v3.10").unwrap();
        let tree = spec.generate(7);
        let counts = scan_source(&tree.concatenated());
        let targets = spec.scaled_targets();
        assert_eq!(counts.spinlock_inits, targets.spinlock_inits);
        assert_eq!(counts.mutex_inits, targets.mutex_inits);
        assert_eq!(counts.rcu_usages, targets.rcu_usages);
        // LoC is met within the final file's granularity.
        let loc_err = (counts.loc as f64 - targets.loc as f64).abs() / targets.loc as f64;
        assert!(
            loc_err < 0.05,
            "loc {} vs target {}",
            counts.loc,
            targets.loc
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec::for_release("v4.0").unwrap();
        let a = spec.generate(1).concatenated();
        let b = spec.generate(1).concatenated();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_release_is_none() {
        assert!(CorpusSpec::for_release("v9.9").is_none());
    }
}
