//! # locksrc: kernel-source lock-usage scanning (paper Fig. 1 substrate)
//!
//! The paper's Fig. 1 plots, for every major Linux release from v3.0 to
//! v4.18, the number of calls to lock-related initialization functions
//! (spinlocks, mutexes, RCU) and the total lines of code. We cannot ship
//! 19 kernel trees, so this crate provides
//!
//! * a real, reusable [`scan`] module: a tokenizing scanner that counts
//!   lock-initializer calls and effective LoC in any C source tree — run
//!   it on an actual kernel checkout and it produces the real Fig. 1 data;
//! * a [`corpus`] module that synthesizes C-like source trees per release,
//!   with growth calibrated to the paper's published statistics (+81 %
//!   mutexes, +45 % spinlocks, +73 % LoC over the 7-year span), so the
//!   full pipeline can be exercised offline;
//! * a full static lockset analysis — [`ast`] parses the C-like corpus
//!   language, [`cfg`] lowers it to basic blocks, [`lockstate`] runs a
//!   flow- and context-sensitive must-hold lockset propagation, and
//!   [`outlier`] mines per-(struct, member) majority patterns and flags
//!   deviating access sites, following the outlier-based approach of
//!   Dossche et al. (see PAPERS.md). Entry point: [`analyze_tree`].
//!
//! # Examples
//!
//! ```
//! use locksrc::corpus::CorpusSpec;
//! use locksrc::scan::scan_source;
//!
//! let spec = CorpusSpec::for_release("v3.0").expect("known release");
//! let tree = spec.generate(42);
//! let counts = scan_source(&tree.concatenated());
//! assert!(counts.spinlock_inits > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cfg;
pub mod corpus;
pub mod lockstate;
pub mod outlier;
pub mod scan;

pub use corpus::{CorpusSpec, ReleasePoint, RELEASES};
pub use lockstate::{AccessObservation, AnalysisConfig};
pub use outlier::{analyze_tree, MinerConfig, OutlierFinding, StaticReport};
pub use scan::{scan_source, LockUsageCounts};
