//! Lexer and parser for the C-like corpus language.
//!
//! The static lockset analysis (DESIGN §5.9) does not need a full C
//! front end: it needs *functions*, *lock/unlock call sites*, and *typed
//! struct-member access sites*, with everything else tolerated and
//! skipped. The parser here is therefore total — any input produces a
//! [`Program`]; constructs it does not understand become [`Stmt::Other`]
//! and never abort the parse. Typing comes from parameter declarations
//! (`struct inode *inode` makes every `inode->member` a typed access),
//! which is exactly how the generated corpora and the rendered
//! ground-truth trees declare their instances.
//!
//! Determinism: files are parsed independently (shardable per file) and
//! the resulting [`Program`] orders files by path and functions by
//! source position, so the output is independent of both input file
//! order and worker count.

use lockdoc_platform::par::par_map;
use std::fmt;

/// Read or write side of a member access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// Read access.
    Read,
    /// Write access.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "r",
            AccessKind::Write => "w",
        })
    }
}

/// The lock operand of an acquire/release call site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockTarget {
    /// A file- or program-scope lock: `spin_lock(&inode_hash_lock)`.
    Global(String),
    /// A lock embedded in a struct instance: `spin_lock(&inode->i_lock)`.
    Member {
        /// Variable holding the instance (a parameter or local).
        base: String,
        /// Lock member name.
        member: String,
    },
}

/// One parsed statement. Only the lock-relevant shapes are modelled;
/// everything else is [`Stmt::Other`].
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Lock acquire (`spin_lock`, `mutex_lock`, `down_write`, …).
    Acquire {
        /// Acquire function name (kept for canonical printing).
        func: String,
        /// The lock operand.
        target: LockTarget,
        /// 1-based source line.
        line: u32,
    },
    /// Lock release (`spin_unlock`, `mutex_unlock`, `up_write`, …).
    Release {
        /// Release function name.
        func: String,
        /// The lock operand.
        target: LockTarget,
        /// 1-based source line.
        line: u32,
    },
    /// A struct-member access `base->member`.
    Access {
        /// Variable holding the instance.
        base: String,
        /// Member name.
        member: String,
        /// Read or write.
        kind: AccessKind,
        /// 1-based source line.
        line: u32,
    },
    /// A call to another function in (or outside) the program.
    Call {
        /// Callee name.
        callee: String,
        /// Positional arguments; `Some(name)` for bare identifiers
        /// (bindable to callee parameters), `None` otherwise.
        args: Vec<Option<String>>,
        /// 1-based source line.
        line: u32,
    },
    /// `if` with optional `else`; condition accesses are hoisted into
    /// `cond` (they execute before the branch).
    If {
        /// Member accesses evaluated by the condition.
        cond: Vec<Stmt>,
        /// Then-branch body.
        then_body: Vec<Stmt>,
        /// Else-branch body (empty when absent).
        else_body: Vec<Stmt>,
        /// 1-based source line of the `if`.
        line: u32,
    },
    /// A loop (`while`, `for`, `do`); condition accesses in `cond`.
    Loop {
        /// Member accesses evaluated by the condition.
        cond: Vec<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
        /// 1-based source line of the loop keyword.
        line: u32,
    },
    /// Anything else (declarations, arithmetic, returns, externs).
    Other,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Struct type name for `struct T *name` parameters, `None` for
    /// scalars (which can never carry member accesses).
    pub type_name: Option<String>,
    /// Parameter name.
    pub name: String,
}

/// One parsed function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// 1-based line of the definition.
    pub line: u32,
}

/// One parsed source file.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// File path (as given to the parser).
    pub path: String,
    /// Function definitions in source order.
    pub functions: Vec<Function>,
}

/// A whole parsed tree, files ordered by path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Parsed files, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Program {
    /// Total number of function definitions.
    pub fn function_count(&self) -> usize {
        self.files.iter().map(|f| f.functions.len()).sum()
    }
}

/// Acquire-side lock functions the parser recognizes.
pub const ACQUIRE_FNS: &[&str] = &[
    "spin_lock",
    "spin_lock_irqsave",
    "spin_lock_irq",
    "spin_lock_bh",
    "raw_spin_lock",
    "mutex_lock",
    "mutex_lock_nested",
    "read_lock",
    "write_lock",
    "down_read",
    "down_write",
    "down",
];

/// Release-side lock functions the parser recognizes.
pub const RELEASE_FNS: &[&str] = &[
    "spin_unlock",
    "spin_unlock_irqrestore",
    "spin_unlock_irq",
    "spin_unlock_bh",
    "raw_spin_unlock",
    "mutex_unlock",
    "read_unlock",
    "write_unlock",
    "up_read",
    "up_write",
    "up",
];

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum TokKind {
    Ident(String),
    Num,
    Str,
    Op(&'static str),
    Char(char),
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    kind: TokKind,
    line: u32,
}

const TWO_CHAR_OPS: &[&str] = &[
    "->", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "&&", "||", "<<",
    ">>", "++", "--",
];

/// Tokenizes one file: comments, string/char literals and preprocessor
/// lines are consumed but produce no (or opaque) tokens.
fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut at_line_start = true;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                at_line_start = true;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' if at_line_start => {
                // Preprocessor directive: skip to end of line (handling
                // line continuations).
                while i < bytes.len() && bytes[i] != b'\n' {
                    if bytes[i] == b'\\' && bytes.get(i + 1) == Some(&b'\n') {
                        line += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i < bytes.len() {
                    if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        i += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                at_line_start = false;
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        i += 2;
                    } else if bytes[i] == quote {
                        i += 1;
                        break;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.push(Token {
                    kind: TokKind::Str,
                    line,
                });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                at_line_start = false;
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokKind::Ident(src[start..i].to_owned()),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                at_line_start = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'.' || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token {
                    kind: TokKind::Num,
                    line,
                });
            }
            _ => {
                at_line_start = false;
                let two = &src[i..bytes.len().min(i + 2)];
                if let Some(op) = TWO_CHAR_OPS.iter().find(|&&o| o == two) {
                    out.push(Token {
                        kind: TokKind::Op(op),
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokKind::Char(c as char),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn is_char(&self, offset: usize, c: char) -> bool {
        matches!(self.toks.get(self.pos + offset), Some(t) if t.kind == TokKind::Char(c))
    }

    fn ident_at(&self, offset: usize) -> Option<&'a str> {
        match self.toks.get(self.pos + offset).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s),
            _ => None,
        }
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    /// Advances past a balanced `( … )` or `{ … }` starting at the
    /// current token; robust to premature EOF.
    fn skip_balanced(&mut self, open: char, close: char) {
        debug_assert!(self.is_char(0, open));
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t.kind {
                TokKind::Char(c) if c == open => depth += 1,
                TokKind::Char(c) if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Collects the token range of a balanced `( … )`, returning the
    /// inner slice.
    fn collect_parens(&mut self) -> &'a [Token] {
        debug_assert!(self.is_char(0, '('));
        let start = self.pos + 1;
        self.skip_balanced('(', ')');
        let end = self.pos.saturating_sub(1).max(start);
        &self.toks[start..end]
    }

    /// Parses the whole token stream into function definitions.
    fn parse_top(&mut self) -> Vec<Function> {
        let mut out = Vec::new();
        while self.pos < self.toks.len() {
            if let Some(f) = self.try_function() {
                out.push(f);
            }
        }
        out
    }

    /// Tries to parse a function definition at the current position;
    /// on failure, skips one top-level declaration and returns `None`.
    fn try_function(&mut self) -> Option<Function> {
        // Scan ahead: a function definition is `… name ( params ) {`.
        let mut j = self.pos;
        while let Some(t) = self.toks.get(j) {
            match &t.kind {
                TokKind::Char(';')
                | TokKind::Char('{')
                | TokKind::Char('(')
                | TokKind::Char('=') => break,
                _ => j += 1,
            }
        }
        let is_fn_header = matches!(self.toks.get(j).map(|t| &t.kind), Some(TokKind::Char('(')))
            && j > self.pos
            && matches!(
                self.toks.get(j - 1).map(|t| &t.kind),
                Some(TokKind::Ident(_))
            );
        if !is_fn_header {
            self.skip_declaration();
            return None;
        }
        let name = match &self.toks[j - 1].kind {
            TokKind::Ident(s) => s.clone(),
            _ => unreachable!(),
        };
        let line = self.toks[j - 1].line;
        self.pos = j;
        let param_toks = self.collect_parens();
        if !self.is_char(0, '{') {
            // Prototype, macro invocation, or initializer — not a body.
            self.skip_declaration();
            return None;
        }
        self.bump(); // '{'
        let body = self.parse_block();
        Some(Function {
            name,
            params: parse_params(param_toks),
            body,
            line,
        })
    }

    /// Skips one non-function top-level declaration (to the next `;`,
    /// skipping balanced braces and parens on the way).
    fn skip_declaration(&mut self) {
        while let Some(t) = self.peek() {
            match t.kind {
                TokKind::Char(';') => {
                    self.bump();
                    return;
                }
                TokKind::Char('{') => self.skip_balanced('{', '}'),
                TokKind::Char('(') => self.skip_balanced('(', ')'),
                _ => self.bump(),
            }
        }
    }

    /// Parses statements until the matching `}` (which is consumed).
    fn parse_block(&mut self) -> Vec<Stmt> {
        let mut out = Vec::new();
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Char('}') {
                self.bump();
                return out;
            }
            self.parse_stmt(&mut out);
        }
        out
    }

    /// Parses one statement (possibly compound) into `out`.
    fn parse_stmt(&mut self, out: &mut Vec<Stmt>) {
        let Some(first) = self.peek() else { return };
        let line = first.line;
        match &first.kind {
            TokKind::Char('{') => {
                self.bump();
                let mut inner = self.parse_block();
                out.append(&mut inner);
            }
            TokKind::Char(';') => self.bump(),
            TokKind::Ident(kw) if kw == "if" => {
                self.bump();
                let cond = if self.is_char(0, '(') {
                    extract_accesses(self.collect_parens())
                } else {
                    Vec::new()
                };
                let mut then_body = Vec::new();
                self.parse_stmt(&mut then_body);
                let mut else_body = Vec::new();
                if self.ident_at(0) == Some("else") {
                    self.bump();
                    self.parse_stmt(&mut else_body);
                }
                out.push(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    line,
                });
            }
            TokKind::Ident(kw) if kw == "while" => {
                self.bump();
                let cond = if self.is_char(0, '(') {
                    extract_accesses(self.collect_parens())
                } else {
                    Vec::new()
                };
                let mut body = Vec::new();
                self.parse_stmt(&mut body);
                out.push(Stmt::Loop { cond, body, line });
            }
            TokKind::Ident(kw) if kw == "for" => {
                self.bump();
                let cond = if self.is_char(0, '(') {
                    extract_accesses(self.collect_parens())
                } else {
                    Vec::new()
                };
                let mut body = Vec::new();
                self.parse_stmt(&mut body);
                out.push(Stmt::Loop { cond, body, line });
            }
            TokKind::Ident(kw) if kw == "do" => {
                self.bump();
                let mut body = Vec::new();
                self.parse_stmt(&mut body);
                let mut cond = Vec::new();
                if self.ident_at(0) == Some("while") {
                    self.bump();
                    if self.is_char(0, '(') {
                        cond = extract_accesses(self.collect_parens());
                    }
                    if self.is_char(0, ';') {
                        self.bump();
                    }
                }
                out.push(Stmt::Loop { cond, body, line });
            }
            _ => {
                // Simple statement: everything up to `;` at depth 0.
                let start = self.pos;
                let mut depth = 0i32;
                while let Some(t) = self.peek() {
                    match t.kind {
                        TokKind::Char('(') | TokKind::Char('{') | TokKind::Char('[') => depth += 1,
                        TokKind::Char(')') | TokKind::Char('}') | TokKind::Char(']') => {
                            if depth == 0 && t.kind == TokKind::Char('}') {
                                break; // unterminated statement before block end
                            }
                            depth -= 1;
                        }
                        TokKind::Char(';') if depth == 0 => break,
                        _ => {}
                    }
                    self.bump();
                }
                let toks = &self.toks[start..self.pos];
                if self.is_char(0, ';') {
                    self.bump();
                }
                classify_simple(toks, out);
            }
        }
    }
}

/// Parses a parameter list: `struct T *name` parameters become typed,
/// everything else keeps only its name.
fn parse_params(toks: &[Token]) -> Vec<Param> {
    let mut out = Vec::new();
    for group in split_commas(toks) {
        let idents: Vec<&str> = group
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        if idents == ["void"] || idents.is_empty() {
            continue;
        }
        let has_star = group.iter().any(|t| t.kind == TokKind::Char('*'));
        let name = (*idents.last().unwrap()).to_owned();
        let type_name = if has_star && idents.len() >= 2 && idents[0] == "struct" {
            Some(idents[1].to_owned())
        } else {
            None
        };
        out.push(Param { type_name, name });
    }
    out
}

/// Splits a token slice on top-level commas.
fn split_commas(toks: &[Token]) -> Vec<&[Token]> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Char('(') | TokKind::Char('{') | TokKind::Char('[') => depth += 1,
            TokKind::Char(')') | TokKind::Char('}') | TokKind::Char(']') => depth -= 1,
            TokKind::Char(',') if depth == 0 => {
                out.push(&toks[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
    out
}

/// True when the token at `i` starts a `base->member` pair whose base is
/// a plain variable (not itself a member chain).
fn member_pair(toks: &[Token], i: usize) -> Option<(&str, &str)> {
    let TokKind::Ident(base) = &toks[i].kind else {
        return None;
    };
    if toks.get(i + 1).map(|t| &t.kind) != Some(&TokKind::Op("->")) {
        return None;
    }
    let Some(TokKind::Ident(member)) = toks.get(i + 2).map(|t| &t.kind) else {
        return None;
    };
    // Chains (`a->b->c`) have no simple typed base: skip both pairs.
    if i >= 2 && toks[i - 1].kind == TokKind::Op("->") {
        return None;
    }
    if toks.get(i + 3).map(|t| &t.kind) == Some(&TokKind::Op("->")) {
        return None;
    }
    Some((base, member))
}

/// True when the operator token is a (compound) assignment.
fn is_assign_op(kind: &TokKind) -> bool {
    matches!(
        kind,
        TokKind::Char('=')
            | TokKind::Op("+=")
            | TokKind::Op("-=")
            | TokKind::Op("*=")
            | TokKind::Op("/=")
            | TokKind::Op("%=")
            | TokKind::Op("|=")
            | TokKind::Op("&=")
            | TokKind::Op("^=")
            | TokKind::Op("++")
            | TokKind::Op("--")
    )
}

/// Extracts member accesses (as read/write [`Stmt::Access`]) from an
/// expression token slice. A `base->member` directly followed by an
/// assignment operator is a write; everything else is a read. Compound
/// assignments (`+=`, `++`) count as both.
fn extract_accesses(toks: &[Token]) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some((base, member)) = member_pair(toks, i) {
            let line = toks[i].line;
            let after = toks.get(i + 3).map(|t| &t.kind);
            let written = after.is_some_and(is_assign_op);
            let compound = written && after != Some(&TokKind::Char('='));
            if written {
                out.push(Stmt::Access {
                    base: base.to_owned(),
                    member: member.to_owned(),
                    kind: AccessKind::Write,
                    line,
                });
            }
            if !written || compound {
                out.push(Stmt::Access {
                    base: base.to_owned(),
                    member: member.to_owned(),
                    kind: AccessKind::Read,
                    line,
                });
            }
            i += 3;
        } else {
            i += 1;
        }
    }
    out
}

/// Classifies one simple (semicolon-terminated) statement.
fn classify_simple(toks: &[Token], out: &mut Vec<Stmt>) {
    if toks.is_empty() {
        return;
    }
    let line = toks[0].line;
    // Lock acquire/release or plain call: `ident ( … )` spanning the
    // whole statement.
    if let TokKind::Ident(func) = &toks[0].kind {
        if toks.get(1).map(|t| &t.kind) == Some(&TokKind::Char('(')) {
            let inner = &toks[2..toks.len().saturating_sub(1)];
            let whole_call = toks.last().map(|t| &t.kind) == Some(&TokKind::Char(')'));
            if whole_call {
                let args = split_commas(inner);
                if ACQUIRE_FNS.contains(&func.as_str()) || RELEASE_FNS.contains(&func.as_str()) {
                    if let Some(target) = args.first().and_then(|a| parse_lock_target(a)) {
                        let acquire = ACQUIRE_FNS.contains(&func.as_str());
                        out.push(if acquire {
                            Stmt::Acquire {
                                func: func.clone(),
                                target,
                                line,
                            }
                        } else {
                            Stmt::Release {
                                func: func.clone(),
                                target,
                                line,
                            }
                        });
                        return;
                    }
                    out.push(Stmt::Other);
                    return;
                }
                // Argument expressions may read members.
                let mut reads = extract_accesses(inner);
                out.append(&mut reads);
                out.push(Stmt::Call {
                    callee: func.clone(),
                    args: args.iter().map(|a| bare_ident(a)).collect(),
                    line,
                });
                return;
            }
        }
    }
    let mut accesses = extract_accesses(toks);
    if accesses.is_empty() {
        out.push(Stmt::Other);
    } else {
        out.append(&mut accesses);
    }
}

/// Parses a lock operand: `&base->member`, `&name`, or `name`.
fn parse_lock_target(toks: &[Token]) -> Option<LockTarget> {
    let toks = if toks.first().map(|t| &t.kind) == Some(&TokKind::Char('&')) {
        &toks[1..]
    } else {
        toks
    };
    match toks.len() {
        1 => match &toks[0].kind {
            TokKind::Ident(name) => Some(LockTarget::Global(name.clone())),
            _ => None,
        },
        3 => member_pair(toks, 0).map(|(base, member)| LockTarget::Member {
            base: base.to_owned(),
            member: member.to_owned(),
        }),
        _ => None,
    }
}

/// `Some(name)` when the argument is a single bare identifier.
fn bare_ident(toks: &[Token]) -> Option<String> {
    match toks {
        [t] => match &t.kind {
            TokKind::Ident(s) => Some(s.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// Parses one source file.
pub fn parse_source(path: &str, src: &str) -> SourceFile {
    let toks = lex(src);
    let mut parser = Parser {
        toks: &toks,
        pos: 0,
    };
    SourceFile {
        path: path.to_owned(),
        functions: parser.parse_top(),
    }
}

/// Parses a whole tree, sharded per file; output is independent of the
/// input file order and of `jobs`.
pub fn parse_tree(files: &[(String, String)], jobs: usize) -> Program {
    let mut sorted: Vec<&(String, String)> = files.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let parsed = par_map(jobs, &sorted, |&(path, src)| parse_source(path, src));
    Program { files: parsed }
}

// ---------------------------------------------------------------------
// Canonical printer (round-trip property support)
// ---------------------------------------------------------------------

/// Renders a program back to canonical C-like source, one string per
/// file. `parse_tree(print_program(p))` reproduces `p` up to line
/// numbers, and printing is a fixed point after one round trip.
pub fn print_program(p: &Program) -> Vec<(String, String)> {
    p.files
        .iter()
        .map(|f| {
            let mut out = String::new();
            for func in &f.functions {
                print_function(func, &mut out);
                out.push('\n');
            }
            (f.path.clone(), out)
        })
        .collect()
}

fn print_function(f: &Function, out: &mut String) {
    let params = if f.params.is_empty() {
        "void".to_owned()
    } else {
        f.params
            .iter()
            .map(|p| match &p.type_name {
                Some(t) => format!("struct {t} *{}", p.name),
                None => format!("int {}", p.name),
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str(&format!("static void {}({params})\n{{\n", f.name));
    print_body(&f.body, 1, out);
    out.push_str("}\n");
}

fn print_cond(cond: &[Stmt]) -> String {
    let exprs: Vec<String> = cond
        .iter()
        .filter_map(|s| match s {
            Stmt::Access { base, member, .. } => Some(format!("{base}->{member}")),
            _ => None,
        })
        .collect();
    if exprs.is_empty() {
        "1".to_owned()
    } else {
        exprs.join(" && ")
    }
}

fn print_body(stmts: &[Stmt], depth: usize, out: &mut String) {
    let pad = "\t".repeat(depth);
    for s in stmts {
        match s {
            Stmt::Acquire { func, target, .. } | Stmt::Release { func, target, .. } => {
                let t = match target {
                    LockTarget::Global(name) => format!("&{name}"),
                    LockTarget::Member { base, member } => format!("&{base}->{member}"),
                };
                out.push_str(&format!("{pad}{func}({t});\n"));
            }
            Stmt::Access {
                base, member, kind, ..
            } => match kind {
                AccessKind::Write => out.push_str(&format!("{pad}{base}->{member} = 0;\n")),
                AccessKind::Read => out.push_str(&format!("{pad}tmp = {base}->{member};\n")),
            },
            Stmt::Call { callee, args, .. } => {
                let rendered: Vec<String> = args
                    .iter()
                    .map(|a| a.clone().unwrap_or_else(|| "0".to_owned()))
                    .collect();
                out.push_str(&format!("{pad}{callee}({});\n", rendered.join(", ")));
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                out.push_str(&format!("{pad}if ({}) {{\n", print_cond(cond)));
                print_body(then_body, depth + 1, out);
                if else_body.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    print_body(else_body, depth + 1, out);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            Stmt::Loop { cond, body, .. } => {
                out.push_str(&format!("{pad}while ({}) {{\n", print_cond(cond)));
                print_body(body, depth + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::Other => out.push_str(&format!("{pad}nop();\n")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
/* generated accessor */
#include <linux/fs.h>

static DEFINE_SPINLOCK(inode_hash_lock);

static void inode_i_state_w_0(struct inode *inode)
{
	spin_lock(&inode->i_lock);
	inode->i_state = 7;
	spin_unlock(&inode->i_lock);
}

static int inode_i_state_r_0(struct inode *inode, int n)
{
	int v;
	spin_lock(&inode_hash_lock);
	while (n > 0) {
		v = inode->i_state;
		n = n - 1;
	}
	spin_unlock(&inode_hash_lock);
	return v;
}
"#;

    #[test]
    fn parses_functions_locks_and_accesses() {
        let f = parse_source("a.c", SAMPLE);
        assert_eq!(f.functions.len(), 2);
        let w = &f.functions[0];
        assert_eq!(w.name, "inode_i_state_w_0");
        assert_eq!(w.params.len(), 1);
        assert_eq!(w.params[0].type_name.as_deref(), Some("inode"));
        assert!(matches!(
            &w.body[0],
            Stmt::Acquire { target: LockTarget::Member { base, member }, .. }
                if base == "inode" && member == "i_lock"
        ));
        assert!(matches!(
            &w.body[1],
            Stmt::Access { base, member, kind: AccessKind::Write, .. }
                if base == "inode" && member == "i_state"
        ));
        let r = &f.functions[1];
        // `int v;` becomes Stmt::Other, then the acquire.
        assert!(matches!(&r.body[0], Stmt::Other));
        assert!(matches!(
            &r.body[1],
            Stmt::Acquire { target: LockTarget::Global(g), .. } if g == "inode_hash_lock"
        ));
        let Stmt::Loop { body, .. } = &r.body[2] else {
            panic!("expected loop, got {:?}", r.body[2]);
        };
        assert!(matches!(
            &body[0],
            Stmt::Access { kind: AccessKind::Read, member, .. } if member == "i_state"
        ));
    }

    #[test]
    fn branch_and_call_statements_parse() {
        let src = "static void f(struct inode *inode, int c)\n{\n\
                   \tif (c) {\n\t\thelper(inode, c);\n\t} else {\n\t\tinode->i_flags = 1;\n\t}\n}\n";
        let f = parse_source("b.c", src);
        let Stmt::If {
            then_body,
            else_body,
            ..
        } = &f.functions[0].body[0]
        else {
            panic!("expected if");
        };
        assert!(matches!(
            &then_body[0],
            Stmt::Call { callee, args, .. }
                if callee == "helper" && args[0].as_deref() == Some("inode")
        ));
        assert!(matches!(&else_body[0], Stmt::Access { .. }));
    }

    #[test]
    fn condition_accesses_are_hoisted_as_reads() {
        let src = "static void f(struct inode *inode)\n{\n\tif (inode->i_state) {\n\t\tinode->i_flags = 1;\n\t}\n}\n";
        let f = parse_source("c.c", src);
        let Stmt::If { cond, .. } = &f.functions[0].body[0] else {
            panic!("expected if");
        };
        assert!(matches!(
            &cond[0],
            Stmt::Access { member, kind: AccessKind::Read, .. } if member == "i_state"
        ));
    }

    #[test]
    fn compound_assignment_counts_as_read_and_write() {
        let src = "static void f(struct inode *inode)\n{\n\tinode->i_bytes += 2;\n}\n";
        let f = parse_source("d.c", src);
        let kinds: Vec<AccessKind> = f.functions[0]
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Access { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![AccessKind::Write, AccessKind::Read]);
    }

    #[test]
    fn member_chains_and_unknown_constructs_are_tolerated() {
        let src = "struct foo { int x; };\n\
                   static void f(struct inode *inode)\n{\n\
                   \tinode->i_sb->s_flags = 1;\n\
                   \tweird ++ ! syntax\n}\n";
        let f = parse_source("e.c", src);
        assert_eq!(f.functions.len(), 1);
        // The chained access has no typed base and is skipped.
        assert!(!f.functions[0]
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Access { .. })));
    }

    #[test]
    fn parse_tree_sorts_by_path_and_is_order_invariant() {
        let a = ("z.c".to_owned(), SAMPLE.to_owned());
        let b = ("a.c".to_owned(), "static void g(void)\n{\n}\n".to_owned());
        let p1 = parse_tree(&[a.clone(), b.clone()], 1);
        let p2 = parse_tree(&[b, a], 2);
        assert_eq!(p1, p2);
        assert_eq!(p1.files[0].path, "a.c");
    }

    #[test]
    fn print_parse_round_trips() {
        let p = parse_tree(&[("a.c".to_owned(), SAMPLE.to_owned())], 1);
        let printed = print_program(&p);
        let p2 = parse_tree(&printed, 1);
        let printed2 = print_program(&p2);
        assert_eq!(printed, printed2, "printing is a fixed point");
        // Structure survives (lines differ, so compare via print).
        assert_eq!(p2.function_count(), p.function_count());
    }
}
