//! Flow-sensitive, context-sensitive lockset propagation.
//!
//! For every typed member access site the analysis computes the set of
//! locks held on every *realizable* path to it:
//!
//! * **Intra-procedural**: a forward dataflow over the [`crate::cfg`]
//!   basic blocks. The lattice is the powerset of lock values ordered by
//!   ⊇; joins (branch merges, loop headers) intersect, so only locks
//!   held on *all* incoming paths survive — the classic "must-hold"
//!   lockset.
//! * **Inter-procedural**: bounded call-string cloning. Call sites with
//!   a known callee re-analyze the callee body under the caller's
//!   current lockset, with actual arguments bound positionally to the
//!   callee's parameters, up to [`AnalysisConfig::max_call_string`]
//!   frames. The same access site is therefore observed once per
//!   realizable context, each with its own held set and witness call
//!   path — a site under a locked caller and an unlocked caller yields
//!   two distinct observations instead of one merged (and wrong) one.
//!
//! Lock identity is tracked per *instance*: parameters get abstract
//! instance ids at the analysis root and argument binding threads them
//! through calls, so `spin_lock(&a->lock)` in a caller protects
//! `p->member` in the callee exactly when `a` was passed as `p`. At an
//! access the held set is normalized relative to the accessed instance:
//! `ES(lock)` for a lock embedded in the same instance, `EO(lock in T)`
//! for one embedded in another instance, `G(name)` for globals — the
//! same vocabulary the dynamic passes and the rulespec notation use.
//!
//! Analysis roots are the functions never called from inside the
//! program (plus any functions unreachable from those, so no site is
//! silently dropped); roots are sharded on [`lockdoc_platform::par`]
//! and the observation list is canonically sorted, so output is
//! byte-identical at any worker count.

use crate::ast::{AccessKind, Function, LockTarget, Program, Stmt};
use crate::cfg::{self, Op};
use lockdoc_platform::par::par_map;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Tuning knobs for the propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisConfig {
    /// Maximum call-string length (frames, including the root). Calls
    /// that would exceed the bound are treated as opaque no-ops; their
    /// sites are still observed from shallower contexts or their own
    /// roots.
    pub max_call_string: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig { max_call_string: 4 }
    }
}

/// One (access site, calling context) observation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccessObservation {
    /// Struct type of the accessed instance.
    pub type_name: String,
    /// Member name.
    pub member: String,
    /// Read or write.
    pub kind: AccessKind,
    /// File containing the access.
    pub file: String,
    /// 1-based line of the access.
    pub line: u32,
    /// Normalized held lockset, sorted (`ES(..)`, `EO(.. in T)`,
    /// `G(..)`).
    pub held: Vec<String>,
    /// Witness call path, root first.
    pub path: Vec<String>,
}

/// An abstract lock value during propagation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum LockVal {
    Global(String),
    Embedded { inst: u32, member: String },
}

type LockSet = BTreeSet<LockVal>;

struct FnInfo<'a> {
    file: &'a str,
    func: &'a Function,
}

/// Per-root mutable state: instance types and collected observations.
struct RootState {
    inst_types: Vec<String>,
    obs: Vec<AccessObservation>,
    /// Memoized call effects: (call path, callee, bound instances,
    /// entry lockset) → exit lockset. Avoids re-running callee
    /// fixpoints during the caller's own fixpoint iteration. The path
    /// is part of the key because the call-string bound (and recursion
    /// cut-off) makes a callee's effect depend on the depth it is
    /// reached at.
    effects: HashMap<EffectKey, LockSet>,
}

/// Memo key: (call path, callee, bound instances, entry lockset).
type EffectKey = (String, String, Vec<Option<u32>>, Vec<LockVal>);

impl RootState {
    fn fresh_inst(&mut self, type_name: &str) -> u32 {
        self.inst_types.push(type_name.to_owned());
        (self.inst_types.len() - 1) as u32
    }
}

struct Analyzer<'a> {
    fns: HashMap<&'a str, FnInfo<'a>>,
    cfg: AnalysisConfig,
}

/// One frame's variable environment: name → instance id.
#[derive(Clone)]
struct Env<'a> {
    vars: HashMap<&'a str, u32>,
}

impl<'a> Analyzer<'a> {
    fn resolve_lock(&self, target: &LockTarget, env: &Env<'a>) -> Option<LockVal> {
        match target {
            LockTarget::Global(name) => Some(LockVal::Global(name.clone())),
            LockTarget::Member { base, member } => {
                env.vars.get(base.as_str()).map(|&inst| LockVal::Embedded {
                    inst,
                    member: member.clone(),
                })
            }
        }
    }

    /// Binds a call's actual arguments to the callee's parameters.
    /// Unbindable arguments (non-identifiers, unknown variables, arity
    /// mismatches) become fresh opaque instances of the declared type.
    fn bind(
        &self,
        callee: &'a Function,
        args: &[Option<String>],
        env: &Env<'a>,
        st: &mut RootState,
    ) -> (Env<'a>, Vec<Option<u32>>) {
        let mut vars = HashMap::new();
        let mut key = Vec::with_capacity(callee.params.len());
        for (i, p) in callee.params.iter().enumerate() {
            let bound = args
                .get(i)
                .and_then(|a| a.as_deref())
                .and_then(|name| env.vars.get(name).copied());
            key.push(bound);
            let inst = match bound {
                Some(inst) => inst,
                None => st.fresh_inst(p.type_name.as_deref().unwrap_or("?")),
            };
            vars.insert(p.name.as_str(), inst);
        }
        (Env { vars }, key)
    }

    /// Computes a call's effect on the lockset (memoized, no
    /// observation recording).
    fn call_effect(
        &self,
        callee: &str,
        args: &[Option<String>],
        env: &Env<'a>,
        held: &LockSet,
        path: &[&'a str],
        st: &mut RootState,
    ) -> LockSet {
        let Some(info) = self.fns.get(callee) else {
            return held.clone(); // extern: assume lock-neutral
        };
        if path.len() >= self.cfg.max_call_string || path.contains(&info.func.name.as_str()) {
            return held.clone(); // bound or recursion: opaque
        }
        let (callee_env, key_insts) = self.bind(info.func, args, env, st);
        let key = (
            path.join("\u{1f}"),
            callee.to_owned(),
            key_insts,
            held.iter().cloned().collect::<Vec<_>>(),
        );
        if let Some(exit) = st.effects.get(&key) {
            return exit.clone();
        }
        let mut path2: Vec<&str> = path.to_vec();
        path2.push(&info.func.name);
        let exit = self.run_fn(info, &callee_env, held, &path2, st, false);
        st.effects.insert(key, exit.clone());
        exit
    }

    /// Runs the intra-procedural fixpoint for one function under one
    /// context. When `record` is set, access observations (including
    /// those inside callees) are pushed onto `st.obs`. Returns the
    /// exit lockset.
    fn run_fn(
        &self,
        info: &FnInfo<'a>,
        env: &Env<'a>,
        entry: &LockSet,
        path: &[&'a str],
        st: &mut RootState,
        record: bool,
    ) -> LockSet {
        let graph = cfg::build(info.func);
        let n = graph.blocks.len();
        let mut in_states: Vec<Option<LockSet>> = vec![None; n];
        in_states[0] = Some(entry.clone());
        // Worklist fixpoint; the lattice only shrinks, so it terminates.
        let mut work: Vec<usize> = vec![0];
        while let Some(b) = work.pop() {
            let Some(state) = in_states[b].clone() else {
                continue;
            };
            let out = self.transfer(&graph.blocks[b].ops, state, env, path, st);
            for &succ in &graph.blocks[b].succs {
                let merged = match &in_states[succ] {
                    None => out.clone(),
                    Some(prev) => prev.intersection(&out).cloned().collect(),
                };
                if in_states[succ].as_ref() != Some(&merged) {
                    in_states[succ] = Some(merged);
                    work.push(succ);
                }
            }
        }
        if record {
            for (b, block) in graph.blocks.iter().enumerate() {
                let Some(state) = in_states[b].clone() else {
                    continue;
                };
                self.replay(&block.ops, state, env, path, st, info.file);
            }
        }
        in_states[graph.exit].clone().unwrap_or_default()
    }

    /// Applies a block's ops to a lockset (no recording).
    fn transfer(
        &self,
        ops: &[Op<'_>],
        mut state: LockSet,
        env: &Env<'a>,
        path: &[&'a str],
        st: &mut RootState,
    ) -> LockSet {
        for op in ops {
            match op {
                Op::Acquire { target, .. } => {
                    if let Some(l) = self.resolve_lock(target, env) {
                        state.insert(l);
                    }
                }
                Op::Release { target, .. } => {
                    if let Some(l) = self.resolve_lock(target, env) {
                        state.remove(&l);
                    }
                }
                Op::Access { .. } => {}
                Op::Call { callee, args, .. } => {
                    state = self.call_effect(callee, args, env, &state, path, st);
                }
            }
        }
        state
    }

    /// Re-walks a block with its final in-state, recording access
    /// observations and descending into callees.
    fn replay(
        &self,
        ops: &[Op<'_>],
        mut state: LockSet,
        env: &Env<'a>,
        path: &[&'a str],
        st: &mut RootState,
        file: &str,
    ) {
        for op in ops {
            match op {
                Op::Acquire { target, .. } => {
                    if let Some(l) = self.resolve_lock(target, env) {
                        state.insert(l);
                    }
                }
                Op::Release { target, .. } => {
                    if let Some(l) = self.resolve_lock(target, env) {
                        state.remove(&l);
                    }
                }
                Op::Access {
                    base,
                    member,
                    kind,
                    line,
                } => {
                    if let Some(&inst) = env.vars.get(base) {
                        let type_name = st.inst_types[inst as usize].clone();
                        if type_name != "?" {
                            let held = normalize(&state, inst, st);
                            st.obs.push(AccessObservation {
                                type_name,
                                member: (*member).to_owned(),
                                kind: *kind,
                                file: file.to_owned(),
                                line: *line,
                                held,
                                path: path.iter().map(|s| (*s).to_owned()).collect(),
                            });
                        }
                    }
                }
                Op::Call { callee, args, .. } => {
                    let exit = self.call_effect(callee, args, env, &state, path, st);
                    if let Some(info) = self.fns.get(*callee) {
                        if path.len() < self.cfg.max_call_string
                            && !path.contains(&info.func.name.as_str())
                        {
                            let (callee_env, _) = self.bind(info.func, args, env, st);
                            let mut path2: Vec<&str> = path.to_vec();
                            path2.push(&info.func.name);
                            self.run_fn(info, &callee_env, &state, &path2, st, true);
                        }
                    }
                    state = exit;
                }
            }
        }
    }

    fn run_root(&self, info: &FnInfo<'a>) -> Vec<AccessObservation> {
        let mut st = RootState {
            inst_types: Vec::new(),
            obs: Vec::new(),
            effects: HashMap::new(),
        };
        let mut vars = HashMap::new();
        for p in &info.func.params {
            let inst = st.fresh_inst(p.type_name.as_deref().unwrap_or("?"));
            vars.insert(p.name.as_str(), inst);
        }
        let env = Env { vars };
        let path = vec![info.func.name.as_str()];
        self.run_fn(info, &env, &LockSet::new(), &path, &mut st, true);
        st.obs
    }
}

/// Normalizes a lockset relative to the accessed instance.
fn normalize(state: &LockSet, access_inst: u32, st: &RootState) -> Vec<String> {
    let mut out: Vec<String> = state
        .iter()
        .map(|l| match l {
            LockVal::Global(name) => format!("G({name})"),
            LockVal::Embedded { inst, member } if *inst == access_inst => format!("ES({member})"),
            LockVal::Embedded { inst, member } => {
                format!("EO({member} in {})", st.inst_types[*inst as usize])
            }
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Computes the held lockset at every typed access site, in every
/// realizable bounded context. Sharded per analysis root; the result is
/// canonically sorted and byte-identical at any `jobs`.
pub fn collect_observations(
    program: &Program,
    cfg: &AnalysisConfig,
    jobs: usize,
) -> Vec<AccessObservation> {
    let mut fns: HashMap<&str, FnInfo<'_>> = HashMap::new();
    let mut ordered: Vec<&str> = Vec::new();
    for file in &program.files {
        for func in &file.functions {
            // First definition wins on duplicate names (files are
            // path-sorted, so this is deterministic).
            fns.entry(func.name.as_str()).or_insert_with(|| {
                ordered.push(func.name.as_str());
                FnInfo {
                    file: &file.path,
                    func,
                }
            });
        }
    }
    let analyzer = Analyzer { fns, cfg: *cfg };

    // Callee names, to pick the analysis roots.
    let mut called: HashSet<&str> = HashSet::new();
    for file in &program.files {
        for func in &file.functions {
            collect_callees(&func.body, &mut called);
        }
    }
    let mut roots: Vec<&str> = ordered
        .iter()
        .copied()
        .filter(|name| !called.contains(name))
        .collect();
    // Functions unreachable from any root (e.g. call cycles among
    // non-roots) become their own roots so their sites are observed.
    let mut reachable: HashSet<&str> = HashSet::new();
    let mut stack: Vec<&str> = roots.clone();
    while let Some(name) = stack.pop() {
        if !reachable.insert(name) {
            continue;
        }
        if let Some(info) = analyzer.fns.get(name) {
            let mut callees = HashSet::new();
            collect_callees(&info.func.body, &mut callees);
            for c in callees {
                if analyzer.fns.contains_key(c) {
                    stack.push(c);
                }
            }
        }
    }
    roots.extend(ordered.iter().copied().filter(|n| !reachable.contains(n)));

    let per_root = par_map(jobs, &roots, |name| analyzer.run_root(&analyzer.fns[name]));
    let mut obs: Vec<AccessObservation> = per_root.into_iter().flatten().collect();
    obs.sort();
    obs
}

fn collect_callees<'a>(stmts: &'a [Stmt], out: &mut HashSet<&'a str>) {
    for s in stmts {
        match s {
            Stmt::Call { callee, .. } => {
                out.insert(callee.as_str());
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                collect_callees(cond, out);
                collect_callees(then_body, out);
                collect_callees(else_body, out);
            }
            Stmt::Loop { cond, body, .. } => {
                collect_callees(cond, out);
                collect_callees(body, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_tree;

    fn analyze(src: &str) -> Vec<AccessObservation> {
        let program = parse_tree(&[("t.c".to_owned(), src.to_owned())], 1);
        collect_observations(&program, &AnalysisConfig::default(), 1)
    }

    #[test]
    fn straight_line_lockset_is_tracked() {
        let obs = analyze(
            "static void f(struct inode *inode)\n{\n\
             \tspin_lock(&inode->i_lock);\n\tinode->i_state = 1;\n\
             \tspin_unlock(&inode->i_lock);\n\tinode->i_flags = 2;\n}\n",
        );
        assert_eq!(obs.len(), 2);
        let state = obs.iter().find(|o| o.member == "i_state").unwrap();
        assert_eq!(state.held, vec!["ES(i_lock)"]);
        let flags = obs.iter().find(|o| o.member == "i_flags").unwrap();
        assert!(flags.held.is_empty(), "released before access");
    }

    #[test]
    fn branch_join_intersects() {
        // Lock taken on only one branch: not held at the join.
        let obs = analyze(
            "static void f(struct inode *inode, int c)\n{\n\
             \tif (c) {\n\t\tspin_lock(&inode->i_lock);\n\t} else {\n\t\tnop();\n\t}\n\
             \tinode->i_state = 1;\n}\n",
        );
        let o = obs.iter().find(|o| o.member == "i_state").unwrap();
        assert!(o.held.is_empty());
        // Lock taken on both branches: held at the join.
        let obs = analyze(
            "static void f(struct inode *inode, int c)\n{\n\
             \tif (c) {\n\t\tspin_lock(&inode->i_lock);\n\t} else {\n\t\tspin_lock(&inode->i_lock);\n\t}\n\
             \tinode->i_state = 1;\n}\n",
        );
        let o = obs.iter().find(|o| o.member == "i_state").unwrap();
        assert_eq!(o.held, vec!["ES(i_lock)"]);
    }

    #[test]
    fn loop_body_keeps_enclosing_lock() {
        let obs = analyze(
            "static void f(struct inode *inode, int n)\n{\n\
             \tspin_lock(&inode->i_lock);\n\
             \twhile (n) {\n\t\tinode->i_state = n;\n\t}\n\
             \tspin_unlock(&inode->i_lock);\n}\n",
        );
        let o = obs.iter().find(|o| o.member == "i_state").unwrap();
        assert_eq!(o.held, vec!["ES(i_lock)"]);
    }

    #[test]
    fn lock_released_inside_loop_does_not_survive_the_back_edge() {
        let obs = analyze(
            "static void f(struct inode *inode, int n)\n{\n\
             \tspin_lock(&inode->i_lock);\n\
             \twhile (n) {\n\t\tinode->i_state = n;\n\t\tspin_unlock(&inode->i_lock);\n\t}\n}\n",
        );
        let o = obs.iter().find(|o| o.member == "i_state").unwrap();
        // First iteration holds the lock, later ones do not: the loop
        // header join must drop it.
        assert!(o.held.is_empty());
    }

    #[test]
    fn context_sensitivity_distinguishes_callers() {
        let obs = analyze(
            "static void helper(struct inode *inode)\n{\n\tinode->i_state = 1;\n}\n\
             static void locked(struct inode *inode)\n{\n\
             \tspin_lock(&inode->i_lock);\n\thelper(inode);\n\tspin_unlock(&inode->i_lock);\n}\n\
             static void unlocked(struct inode *inode)\n{\n\thelper(inode);\n}\n",
        );
        assert_eq!(obs.len(), 2, "one observation per context: {obs:?}");
        let locked = obs.iter().find(|o| o.path[0] == "locked").unwrap();
        assert_eq!(locked.held, vec!["ES(i_lock)"]);
        assert_eq!(locked.path, vec!["locked", "helper"]);
        let unlocked = obs.iter().find(|o| o.path[0] == "unlocked").unwrap();
        assert!(unlocked.held.is_empty());
    }

    #[test]
    fn embedded_other_locks_normalize_with_holder_type() {
        let obs = analyze(
            "static void f(struct journal_t *journal, struct journal_head *jh)\n{\n\
             \tspin_lock(&journal->j_list_lock);\n\tjh->b_jlist = 1;\n\
             \tspin_unlock(&journal->j_list_lock);\n}\n",
        );
        let o = obs.iter().find(|o| o.member == "b_jlist").unwrap();
        assert_eq!(o.type_name, "journal_head");
        assert_eq!(o.held, vec!["EO(j_list_lock in journal_t)"]);
    }

    #[test]
    fn call_string_bound_is_respected() {
        // Chain of 5 frames with a bound of 4: the deepest call is
        // opaque, so the access in `leaf` is only seen from its own
        // root-fallback context... which does not exist (leaf is
        // called), so nothing is observed beyond the bound.
        let src = "static void leaf(struct inode *inode)\n{\n\tinode->i_state = 1;\n}\n\
                   static void d3(struct inode *inode)\n{\n\tleaf(inode);\n}\n\
                   static void d2(struct inode *inode)\n{\n\td3(inode);\n}\n\
                   static void d1(struct inode *inode)\n{\n\td2(inode);\n}\n\
                   static void root(struct inode *inode)\n{\n\tspin_lock(&inode->i_lock);\n\td1(inode);\n\tspin_unlock(&inode->i_lock);\n}\n";
        let program = parse_tree(&[("t.c".to_owned(), src.to_owned())], 1);
        let shallow = collect_observations(&program, &AnalysisConfig { max_call_string: 4 }, 1);
        assert!(shallow.is_empty(), "bound cuts the chain: {shallow:?}");
        let deep = collect_observations(&program, &AnalysisConfig { max_call_string: 8 }, 1);
        assert_eq!(deep.len(), 1);
        assert_eq!(deep[0].held, vec!["ES(i_lock)"]);
        assert_eq!(deep[0].path, vec!["root", "d1", "d2", "d3", "leaf"]);
    }

    #[test]
    fn recursion_terminates_and_is_opaque() {
        let obs = analyze(
            "static void rec(struct inode *inode, int n)\n{\n\
             \tinode->i_state = n;\n\trec(inode, n);\n}\n",
        );
        assert_eq!(obs.len(), 1);
    }

    #[test]
    fn observations_are_jobs_invariant() {
        let src = "static void helper(struct inode *inode)\n{\n\tinode->i_state = 1;\n}\n\
                   static void a(struct inode *inode)\n{\n\tspin_lock(&inode->i_lock);\n\thelper(inode);\n\tspin_unlock(&inode->i_lock);\n}\n\
                   static void b(struct inode *inode)\n{\n\thelper(inode);\n}\n\
                   static void c(struct dentry *dentry)\n{\n\tspin_lock(&dentry->d_lock);\n\tdentry->d_flags = 1;\n\tspin_unlock(&dentry->d_lock);\n}\n";
        let program = parse_tree(&[("t.c".to_owned(), src.to_owned())], 1);
        let serial = collect_observations(&program, &AnalysisConfig::default(), 1);
        for jobs in [2, 4, 8] {
            let par = collect_observations(&program, &AnalysisConfig::default(), jobs);
            assert_eq!(par, serial, "jobs = {jobs}");
        }
    }
}
