//! A small JSON model, parser, and writer, plus derive-free
//! [`ToJson`]/[`FromJson`] traits.
//!
//! Design notes:
//! * Integers keep their own variants ([`Json::U64`]/[`Json::I64`])
//!   instead of being folded into `f64`: trace addresses such as
//!   `0xffff_8800_0000_0000` exceed the 2^53 integer precision of a
//!   double and must round-trip exactly.
//! * Objects are ordered (`Vec<(String, Json)>`): serializing the same
//!   value twice yields byte-identical text, which the golden pipeline
//!   test relies on.
//! * The parser is a recursive-descent reader over bytes with a byte
//!   offset in every error and a nesting-depth limit, so malformed or
//!   adversarial input fails cleanly (exercised by the robustness tests).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned view; accepts `U64` and non-negative `I64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Signed view; accepts `I64` and in-range `U64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(n) => Some(*n),
            Json::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// Floating view; any numeric variant widens.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Json::Arr(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// Single-line rendering.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Multi-line rendering with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => write_f64(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` emits the shortest representation that parses back to
        // the same bits, so floats round-trip exactly.
        out.push_str(&format!("{x:?}"));
    } else {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

/// A parse or decode failure: message plus byte offset (parse only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub msg: String,
    pub offset: usize,
}

impl JsonError {
    pub fn new(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            offset: 0,
        }
    }

    fn at(msg: impl Into<String>, offset: usize) -> Self {
        Self {
            msg: msg.into(),
            offset,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at("trailing data after document", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected '{word}'"), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at("nesting too deep", self.pos));
        }
        match self.peek() {
            None => Err(JsonError::at("unexpected end of input", self.pos)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(JsonError::at(
                format!("unexpected byte 0x{b:02x}"),
                self.pos,
            )),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => {
                            return Err(JsonError::at("invalid escape", start));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::at(
                        "unescaped control character in string",
                        self.pos,
                    ));
                }
                Some(_) => {
                    // Copy a maximal run of plain bytes in one step. The
                    // run delimiters (`"`, `\`, control bytes) are all
                    // ASCII and UTF-8 continuation bytes are >= 0x80, so
                    // the run ends on a scalar boundary; the input is
                    // &str, so the run itself is valid UTF-8.
                    let run_start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[run_start..self.pos])
                        .map_err(|_| JsonError::at("invalid utf-8", run_start))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: require the trailing \uXXXX low half.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(code)
                        .ok_or_else(|| JsonError::at("invalid surrogate pair", self.pos));
                }
            }
            return Err(JsonError::at("lone high surrogate", self.pos));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(JsonError::at("lone low surrogate", self.pos));
        }
        char::from_u32(hi).ok_or_else(|| JsonError::at("invalid \\u escape", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| JsonError::at("truncated \\u escape", self.pos))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| JsonError::at("bad hex digit in \\u escape", self.pos))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(JsonError::at("expected digit", self.pos));
        }
        // Leading zero must not be followed by more digits.
        if self.peek() == Some(b'0') {
            self.pos += 1;
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at("leading zero", start));
            }
        } else {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at("expected digit after '.'", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at("expected digit in exponent", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Json::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            // Integer overflow: widen to f64 like other parsers do.
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError::at("invalid number", start))
    }
}

/// Conversion into a [`Json`] value. Replaces `#[derive(Serialize)]`.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value. Replaces `#[derive(Deserialize)]`.
pub trait FromJson: Sized {
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serializes a value to the pretty text form.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().pretty()
}

/// Parses text and decodes it into `T`.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

/// Fetches a required object member.
pub fn field<'a>(v: &'a Json, name: &str) -> Result<&'a Json, JsonError> {
    v.get(name)
        .ok_or_else(|| JsonError::new(format!("missing field '{name}'")))
}

/// Decodes a required object member into `T`.
pub fn decode_field<T: FromJson>(v: &Json, name: &str) -> Result<T, JsonError> {
    T::from_json(field(v, name)?).map_err(|e| JsonError::new(format!("field '{name}': {}", e.msg)))
}

macro_rules! impl_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| JsonError::new("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| JsonError::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let n = *self as i64;
                if n >= 0 {
                    Json::U64(n as u64)
                } else {
                    Json::I64(n)
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| JsonError::new("expected integer"))?;
                <$t>::try_from(n).map_err(|_| JsonError::new("integer out of range"))
            }
        }
    )*};
}

impl_json_unsigned!(u8, u16, u32, u64, usize);
impl_json_signed!(i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::new("expected number"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

impl<T: ToJson> ToJson for std::sync::Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for std::sync::Arc<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        T::from_json(v).map(std::sync::Arc::new)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(inner) => inner.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::new("expected 2-element array")),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::new("expected 3-element array")),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or_else(|| JsonError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

impl<T: ToJson + Ord> ToJson for std::collections::BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Ord> FromJson for std::collections::BTreeSet<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "-7", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.compact(), text);
        }
    }

    #[test]
    fn big_u64_round_trips_exactly() {
        let addr = 0xffff_8800_0000_0000u64;
        let text = Json::U64(addr).compact();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(addr));
        let max = Json::U64(u64::MAX).compact();
        assert_eq!(parse(&max).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn float_round_trips_shortest_repr() {
        let x = 0.361_363_443_319_081_3_f64;
        let text = Json::F64(x).compact();
        assert_eq!(parse(&text).unwrap().as_f64(), Some(x));
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::obj(vec![("zebra", Json::U64(1)), ("apple", Json::U64(2))]);
        assert_eq!(v.compact(), r#"{"zebra":1,"apple":2}"#);
        assert_eq!(parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_stable_and_reparses() {
        let v = Json::obj(vec![
            (
                "groups",
                Json::Arr(vec![Json::obj(vec![("n", Json::U64(3))])]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let a = v.pretty();
        let b = v.pretty();
        assert_eq!(a, b);
        assert_eq!(parse(&a).unwrap(), v);
        assert!(a.contains("\n  \"groups\": [\n"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}ü→";
        let text = Json::Str(s.to_owned()).compact();
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for text in [
            "",
            "{",
            "[",
            "\"",
            "{]",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "tru",
            "nul",
            "+1",
            "--1",
            "{\"a\" 1}",
            "[1 2]",
            "\"\\x\"",
            "1 2",
            "{\"a\":1,}",
            "\u{7}",
        ] {
            assert!(parse(text).is_err(), "accepted malformed: {text:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("{\"a\": tru}").unwrap_err();
        assert_eq!(err.offset, 6);
    }

    #[test]
    fn trait_impls_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let text = v.to_json().compact();
        assert_eq!(from_str::<Vec<Option<u32>>>(&text).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("k".to_owned(), -5i64);
        let text = m.to_json().compact();
        assert_eq!(from_str::<BTreeMap<String, i64>>(&text).unwrap(), m);

        let pair = ("name".to_owned(), 9u64);
        let text = pair.to_json().compact();
        assert_eq!(from_str::<(String, u64)>(&text).unwrap(), pair);
    }

    #[test]
    fn out_of_range_decode_fails() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert!(from_str::<bool>("1").is_err());
    }
}
