//! Deterministic pseudo-random number generation.
//!
//! [`Rng`] is xoshiro256** seeded through SplitMix64, mirroring the
//! construction recommended by Blackman & Vigna. The surface intentionally
//! matches the subset of `rand` the workspace used (`seed_from_u64`,
//! `gen_bool`, `gen_range`) so call sites migrate without restructuring.
//!
//! Guarantees:
//! * identical seeds yield identical streams on every platform (the
//!   implementation is pure integer arithmetic, no platform entropy);
//! * `gen_range` is unbiased (rejection sampling, not a bare modulo);
//! * there is no fallback to OS entropy anywhere — an `Rng` can only be
//!   built from an explicit seed.

/// SplitMix64: a tiny, fast generator used to expand a 64-bit seed into
/// the 256-bit xoshiro state. Also usable on its own for seed derivation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives a child seed from a parent seed and an index. Used by the
/// property harness to give every test case an independent stream.
pub fn derive_seed(parent: u64, index: u64) -> u64 {
    let mut sm = SplitMix64::new(parent ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
    sm.next_u64()
}

/// xoshiro256** — the workspace-wide deterministic PRNG.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Draw unconditionally so the stream advances the same way
        // regardless of the probability value.
        self.f64_unit() < p
    }

    /// A uniform value below `bound` (> 0), bias-free via rejection.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Reject draws from the final partial copy of [0, bound) so each
        // residue is equally likely.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return x % bound;
            }
        }
    }

    /// A uniform value in `[range.start, range.end)`. Panics if empty,
    /// matching `rand`'s contract.
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample(self, range.start, range.end)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range_f64: empty range");
        range.start + self.f64_unit() * (range.end - range.start)
    }

    /// A uniform index into a slice, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleRange: Copy + PartialOrd {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                let span = (hi as u64) - (lo as u64);
                lo + rng.below(span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 0 from the published SplitMix64 code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(0xD0C);
        let mut b = Rng::seed_from_u64(0xD0C);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn f64_unit_in_half_open_interval() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.f64_unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Rng::seed_from_u64(5);
        assert!(rng.choose::<u8>(&[]).is_none());
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*rng.choose(&items).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
