//! A fast, deterministic, non-cryptographic hasher for integer-keyed
//! interior hash maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of nanoseconds
//! per small key, which dominates per-event work in hot import loops whose
//! keys are trusted integers (ids the importer itself assigned). This is
//! an FxHash-style multiply-xor hasher: 1-2 ns per word, identical on
//! every platform and run, so swapping it in never perturbs any
//! determinism gate (no map iteration order is ever observable in
//! output — callers only get/insert).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style word-at-a-time hasher. Not DoS-resistant — use only for
/// keys an attacker cannot choose (internal dense ids, addresses already
/// validated by the importer).
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_behave_like_std_maps() {
        let mut m: FastMap<(u32, u32), u32> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(3)), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(3))), Some(&i));
        }
        assert_eq!(m.get(&(7, 0)), None);
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
        // Pinned value: the hash must be identical across runs/platforms.
        assert_eq!(h(0), 0);
        assert_ne!(h(1), 0);
    }

    #[test]
    fn byte_stream_equals_word_stream() {
        let mut a = FastHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FastHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
