//! A plain `std::time::Instant` micro-benchmark runner replacing the
//! `criterion` harness. No statistics machinery — calibrate an iteration
//! count against a wall-clock target, time a measurement loop, report
//! ns/iter. Honors `LOCKDOC_BENCH_TARGET_MS` (per-benchmark measurement
//! budget, default 200) and `LOCKDOC_BENCH_QUICK=1` (single iteration,
//! for smoke-testing the harness itself).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    pub iters: u64,
    pub total: Duration,
}

impl Measurement {
    /// Nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

/// Collects and prints benchmark results.
#[derive(Debug, Default)]
pub struct Bench {
    target: Option<Duration>,
    results: Vec<Measurement>,
}

impl Bench {
    /// A runner configured from the environment.
    pub fn from_env() -> Self {
        let quick = std::env::var("LOCKDOC_BENCH_QUICK").is_ok_and(|v| v == "1");
        let target_ms = std::env::var("LOCKDOC_BENCH_TARGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Self {
            target: if quick {
                None
            } else {
                Some(Duration::from_millis(target_ms))
            },
            results: Vec::new(),
        }
    }

    /// Times `f`, prints one result line, and records the measurement.
    /// The closure's return value is passed through `black_box` so the
    /// optimizer cannot delete the measured work.
    pub fn run<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let iters = match self.target {
            None => 1,
            Some(target) => {
                // Calibrate: time a single iteration, scale to target.
                let t0 = Instant::now();
                black_box(f());
                let once = t0.elapsed().max(Duration::from_nanos(50));
                (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64
            }
        };
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = t0.elapsed();
        let m = Measurement {
            name: name.to_owned(),
            iters,
            total,
        };
        println!(
            "bench {:<44} {:>14.1} ns/iter ({} iters, {:.1} ms total)",
            m.name,
            m.ns_per_iter(),
            m.iters,
            m.total.as_secs_f64() * 1e3
        );
        self.results.push(m);
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_records_a_measurement() {
        let mut b = Bench {
            target: None,
            results: Vec::new(),
        };
        b.run("noop", || 1 + 1);
        assert_eq!(b.results().len(), 1);
        assert_eq!(b.results()[0].iters, 1);
        assert!(b.results()[0].ns_per_iter() >= 0.0);
    }

    #[test]
    fn calibration_scales_iterations() {
        let mut b = Bench {
            target: Some(Duration::from_millis(5)),
            results: Vec::new(),
        };
        b.run("cheap", || black_box(2u64).wrapping_mul(3));
        assert!(b.results()[0].iters > 1);
    }
}
