//! Zero-dependency platform layer for the LockDoc workspace.
//!
//! The build environment is hermetic: no network, no crates.io registry
//! cache. Everything the workspace previously pulled from the registry is
//! provided here, in-tree:
//!
//! * [`rng`] — a deterministic SplitMix64/xoshiro256** PRNG with a
//!   `rand`-compatible surface (`seed_from_u64`, `gen_range`, `gen_bool`).
//! * [`json`] — a small JSON value model, parser, and writer plus the
//!   derive-free [`json::ToJson`]/[`json::FromJson`] traits that replace
//!   the `serde` derive sites.
//! * [`prop`] — a minimal property-testing harness (seeded case
//!   generation, shrinking for integers/floats/vecs/tuples, failure seeds
//!   printed for reproduction) replacing `proptest`.
//! * [`timing`] — a plain `std::time::Instant` micro-bench runner
//!   replacing the `criterion` benches.
//! * [`par`] — a deterministic scoped worker pool (`std::thread::scope`)
//!   with an ordered map-reduce surface replacing `rayon`-style fan-out.
//! * [`vfs`] — a filesystem shim with a real-backed mode and a
//!   deterministic fault-injecting in-memory mode that enumerates crash
//!   points, for crash-consistency testing of persistent state.
//!
//! Every module is deterministic: identical seeds produce identical
//! streams, values, and reports (timing measurements excepted); [`par`]
//! returns results in input order at any worker count.

pub mod hash;
pub mod json;
pub mod par;
pub mod prop;
pub mod rng;
pub mod timing;
pub mod vfs;
