//! Filesystem shim with deterministic crash injection.
//!
//! Every persistence path in the workspace that must survive a power cut
//! talks to the filesystem through a [`Vfs`] handle instead of `std::fs`
//! directly. A handle comes in two modes:
//!
//! * **real** ([`Vfs::real`]) — thin forwarding to `std::fs`, plus real
//!   `fsync` on files and (on Unix) parent directories;
//! * **in-memory** ([`Vfs::mem`]) — a deterministic fault-injecting
//!   filesystem model for tests and benches.
//!
//! # The crash model
//!
//! The in-memory mode keeps two views: the **live** view (what reads
//! observe while the process runs) and the **durable** view (what a
//! crash would leave behind). Mutations apply to the live view
//! immediately but land in a *pending* log; only an explicit
//! [`Vfs::fsync_file`] / [`Vfs::fsync_dir`] moves pending operations
//! into the durable view. Every mutating call — `write`, `rename`,
//! `remove_file`, and both fsyncs — is one numbered **injection point**.
//!
//! Arming a handle ([`Vfs::arm`]) resets the point counter and installs
//! a [`CrashPlan`]. When the counter reaches `crash_at`, the in-flight
//! operation does not execute; instead the durable state is *resolved*
//! adversarially under the plan's seed: each pending write independently
//! persists fully, as a torn prefix, or not at all; each pending rename
//! or remove independently applies or not (a rename whose source content
//! never became durable produces the classic zero-length-file hazard);
//! the in-flight operation itself gets the same treatment. This is a
//! deliberate superset of what journaling filesystems allow — code that
//! survives it relies only on fsync-enforced ordering, never on luck.
//! After the crash every call fails until [`Vfs::reboot`], which adopts
//! the resolved durable state as the new live view.
//!
//! With `crash_at: None` an armed handle merely counts injection points,
//! so a harness can first measure a schedule and then enumerate "crash
//! at point k" for every `k` — the exhaustive crash-consistency property
//! in `tests/crash.rs` is built exactly this way.
//!
//! The real mode supports one injection hook for shell-level gates: when
//! the `LOCKDOC_CRASH_POINT` environment variable is set (see
//! [`Vfs::real_from_env`]), the process exits with status 21 at the
//! given injection point, leaving whatever the operating system had
//! durably applied so far — a single real-world crash schedule that
//! `scripts/verify.sh` drives end to end.

use crate::rng::{derive_seed, Rng};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Exit status of a real-mode injected crash (`LOCKDOC_CRASH_POINT`).
pub const CRASH_EXIT_CODE: i32 = 21;

/// Suffix appended to a path to form its atomic-write temporary.
pub const TMP_SUFFIX: &str = ".tmp";

/// Crash schedule for an armed in-memory handle.
#[derive(Debug, Clone, Copy)]
pub struct CrashPlan {
    /// Injection point at which to crash; `None` only counts points.
    pub crash_at: Option<u64>,
    /// Seed for the adversarial resolution of un-fsynced state.
    pub seed: u64,
}

impl CrashPlan {
    /// A plan that counts injection points without ever crashing.
    pub fn count_only() -> Self {
        Self {
            crash_at: None,
            seed: 0,
        }
    }

    /// A plan that crashes at injection point `k`, resolving un-synced
    /// state under `seed`.
    pub fn crash_at(k: u64, seed: u64) -> Self {
        Self {
            crash_at: Some(k),
            seed,
        }
    }
}

/// One mutation applied to the live view but not yet durable.
#[derive(Debug, Clone)]
enum PendingOp {
    Write { path: PathBuf, bytes: Vec<u8> },
    Rename { from: PathBuf, to: PathBuf },
    Remove { path: PathBuf },
}

#[derive(Debug, Default)]
struct MemState {
    /// What reads see while the process lives.
    live: BTreeMap<PathBuf, Vec<u8>>,
    /// What is guaranteed to survive a crash.
    durable: BTreeMap<PathBuf, Vec<u8>>,
    /// Mutations in the live view that a crash may lose or tear.
    pending: Vec<PendingOp>,
    /// Known directories (created eagerly, treated as durable).
    dirs: BTreeSet<PathBuf>,
    plan: Option<CrashPlan>,
    points: u64,
    crashed: bool,
}

fn err_crashed() -> io::Error {
    io::Error::other("vfs crashed (reboot required)")
}

fn err_crash_point(k: u64) -> io::Error {
    io::Error::other(format!("injected crash at vfs point {k}"))
}

impl MemState {
    /// Registers one injection point. Returns an error — and resolves the
    /// crash state — when the armed plan says this point is the crash.
    /// `inflight` is the operation that would have executed here.
    fn point(&mut self, inflight: Option<PendingOp>) -> io::Result<()> {
        if self.crashed {
            return Err(err_crashed());
        }
        let k = self.points;
        self.points += 1;
        if let Some(plan) = self.plan {
            if plan.crash_at == Some(k) {
                self.resolve_crash(plan.seed, k, inflight);
                return Err(err_crash_point(k));
            }
        }
        Ok(())
    }

    /// Adversarially resolves the durable view at a crash: every pending
    /// (un-fsynced) operation independently survives, tears, or vanishes
    /// under the seeded RNG; the in-flight operation gets the same
    /// treatment. Pending order is respected so same-file sequences
    /// cannot be applied backwards.
    fn resolve_crash(&mut self, seed: u64, k: u64, inflight: Option<PendingOp>) {
        let mut rng = Rng::seed_from_u64(derive_seed(seed, k));
        let mut disk = self.durable.clone();
        let pending = std::mem::take(&mut self.pending);
        for op in pending.iter().chain(inflight.iter()) {
            match op {
                PendingOp::Write { path, bytes } => match rng.gen_range(0..3u32) {
                    0 => {} // lost entirely
                    1 => {
                        disk.insert(path.clone(), bytes.clone());
                    }
                    _ => {
                        let n = rng.gen_range(0..bytes.len() + 1);
                        disk.insert(path.clone(), bytes[..n].to_vec());
                    }
                },
                PendingOp::Rename { from, to } => {
                    if rng.gen_bool(0.5) {
                        // A rename whose source content never became
                        // durable leaves a zero-length file behind — the
                        // delayed-allocation hazard.
                        let v = disk.remove(from).unwrap_or_default();
                        disk.insert(to.clone(), v);
                    }
                }
                PendingOp::Remove { path } => {
                    if rng.gen_bool(0.5) {
                        disk.remove(path);
                    }
                }
            }
        }
        self.durable = disk;
        self.live.clear();
        self.crashed = true;
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            Err(err_crashed())
        } else {
            Ok(())
        }
    }

    fn parent_known(&self, path: &Path) -> io::Result<()> {
        match path.parent() {
            Some(p) if p.as_os_str().is_empty() || self.dirs.contains(p) => Ok(()),
            Some(p) => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such directory: {}", p.display()),
            )),
            None => Ok(()),
        }
    }
}

/// The real-mode crash fuse (`LOCKDOC_CRASH_POINT`).
#[derive(Debug)]
struct Fuse {
    crash_at: u64,
    count: AtomicU64,
}

impl Fuse {
    fn point(&self) {
        let k = self.count.fetch_add(1, Ordering::SeqCst);
        if k == self.crash_at {
            eprintln!("lockdoc: injected crash at vfs point {k} (LOCKDOC_CRASH_POINT)");
            std::process::exit(CRASH_EXIT_CODE);
        }
    }
}

#[derive(Debug, Clone)]
enum Inner {
    Real(Option<Arc<Fuse>>),
    Mem(Arc<Mutex<MemState>>),
}

/// A cloneable filesystem handle; see the module docs for the model.
#[derive(Debug, Clone)]
pub struct Vfs {
    inner: Inner,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::real()
    }
}

impl Vfs {
    /// A handle forwarding to the real filesystem.
    pub fn real() -> Self {
        Self {
            inner: Inner::Real(None),
        }
    }

    /// A real handle that honors the `LOCKDOC_CRASH_POINT` environment
    /// variable: when set to an integer `k`, the process exits with
    /// status [`CRASH_EXIT_CODE`] at mutating operation `k` — the hook
    /// behind the verify.sh crash-recovery gate. Without the variable
    /// this is exactly [`Vfs::real`].
    pub fn real_from_env() -> Self {
        let fuse = std::env::var("LOCKDOC_CRASH_POINT")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(|crash_at| {
                Arc::new(Fuse {
                    crash_at,
                    count: AtomicU64::new(0),
                })
            });
        Self {
            inner: Inner::Real(fuse),
        }
    }

    /// A fresh, empty in-memory filesystem (unarmed: no crashes, but
    /// injection points are counted from construction).
    pub fn mem() -> Self {
        Self {
            inner: Inner::Mem(Arc::new(Mutex::new(MemState::default()))),
        }
    }

    /// True for in-memory handles.
    pub fn is_mem(&self) -> bool {
        matches!(self.inner, Inner::Mem(_))
    }

    fn mem_state(&self) -> Option<&Arc<Mutex<MemState>>> {
        match &self.inner {
            Inner::Mem(m) => Some(m),
            Inner::Real(_) => None,
        }
    }

    fn lock(m: &Arc<Mutex<MemState>>) -> std::sync::MutexGuard<'_, MemState> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Installs a crash plan on an in-memory handle and resets the
    /// injection-point counter to zero. No-op on real handles.
    pub fn arm(&self, plan: CrashPlan) {
        if let Some(m) = self.mem_state() {
            let mut st = Self::lock(m);
            st.plan = Some(plan);
            st.points = 0;
        }
    }

    /// Injection points seen since the last [`Vfs::arm`] (in-memory) or
    /// since construction. Real handles without a fuse report 0.
    pub fn points(&self) -> u64 {
        match &self.inner {
            Inner::Mem(m) => Self::lock(m).points,
            Inner::Real(Some(f)) => f.count.load(Ordering::SeqCst),
            Inner::Real(None) => 0,
        }
    }

    /// True after an injected crash, until [`Vfs::reboot`].
    pub fn crashed(&self) -> bool {
        match self.mem_state() {
            Some(m) => Self::lock(m).crashed,
            None => false,
        }
    }

    /// Recovers an in-memory handle from a crash: the resolved durable
    /// state becomes the live view, the pending log is empty, and the
    /// plan is disarmed. No-op on real handles or when not crashed.
    pub fn reboot(&self) {
        if let Some(m) = self.mem_state() {
            let mut st = Self::lock(m);
            if st.crashed {
                st.live = st.durable.clone();
                st.pending.clear();
                st.crashed = false;
            }
            st.plan = None;
        }
    }

    /// Reads a whole file.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match &self.inner {
            Inner::Real(_) => std::fs::read(path),
            Inner::Mem(m) => {
                let st = Self::lock(m);
                st.check_alive()?;
                st.live.get(path).cloned().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no such file: {}", path.display()),
                    )
                })
            }
        }
    }

    /// Writes a whole file (injection point; not durable until fsync).
    pub fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match &self.inner {
            Inner::Real(fuse) => {
                if let Some(f) = fuse {
                    f.point();
                }
                std::fs::write(path, bytes)
            }
            Inner::Mem(m) => {
                let mut st = Self::lock(m);
                st.check_alive()?;
                st.parent_known(path)?;
                st.point(Some(PendingOp::Write {
                    path: path.to_path_buf(),
                    bytes: bytes.to_vec(),
                }))?;
                st.live.insert(path.to_path_buf(), bytes.to_vec());
                st.pending.push(PendingOp::Write {
                    path: path.to_path_buf(),
                    bytes: bytes.to_vec(),
                });
                Ok(())
            }
        }
    }

    /// Renames a file (injection point; not durable until the parent
    /// directory is fsynced).
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match &self.inner {
            Inner::Real(fuse) => {
                if let Some(f) = fuse {
                    f.point();
                }
                std::fs::rename(from, to)
            }
            Inner::Mem(m) => {
                let mut st = Self::lock(m);
                st.check_alive()?;
                if !st.live.contains_key(from) {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no such file: {}", from.display()),
                    ));
                }
                st.parent_known(to)?;
                st.point(Some(PendingOp::Rename {
                    from: from.to_path_buf(),
                    to: to.to_path_buf(),
                }))?;
                let v = st.live.remove(from).expect("checked above");
                st.live.insert(to.to_path_buf(), v);
                st.pending.push(PendingOp::Rename {
                    from: from.to_path_buf(),
                    to: to.to_path_buf(),
                });
                Ok(())
            }
        }
    }

    /// Removes a file (injection point; not durable until the parent
    /// directory is fsynced).
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        match &self.inner {
            Inner::Real(fuse) => {
                if let Some(f) = fuse {
                    f.point();
                }
                std::fs::remove_file(path)
            }
            Inner::Mem(m) => {
                let mut st = Self::lock(m);
                st.check_alive()?;
                if !st.live.contains_key(path) {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no such file: {}", path.display()),
                    ));
                }
                st.point(Some(PendingOp::Remove {
                    path: path.to_path_buf(),
                }))?;
                st.live.remove(path);
                st.pending.push(PendingOp::Remove {
                    path: path.to_path_buf(),
                });
                Ok(())
            }
        }
    }

    /// Makes the pending writes to `path` durable (injection point).
    pub fn fsync_file(&self, path: &Path) -> io::Result<()> {
        match &self.inner {
            Inner::Real(fuse) => {
                if let Some(f) = fuse {
                    f.point();
                }
                std::fs::File::open(path)?.sync_all()
            }
            Inner::Mem(m) => {
                let mut st = Self::lock(m);
                st.check_alive()?;
                st.point(None)?;
                // Apply pending writes to `path` that precede any pending
                // namespace operation touching it: fsync flushes file
                // content, never directory entries.
                let mut keep = Vec::with_capacity(st.pending.len());
                let mut blocked = false;
                let pending = std::mem::take(&mut st.pending);
                for op in pending {
                    match &op {
                        PendingOp::Write { path: p, bytes } if p == path && !blocked => {
                            st.durable.insert(p.clone(), bytes.clone());
                        }
                        PendingOp::Rename { from, to } if from == path || to == path => {
                            blocked = true;
                            keep.push(op);
                        }
                        PendingOp::Remove { path: p } if p == path => {
                            blocked = true;
                            keep.push(op);
                        }
                        _ => keep.push(op),
                    }
                }
                st.pending = keep;
                Ok(())
            }
        }
    }

    /// Makes the pending renames/removes under directory `dir` durable
    /// (injection point). Best-effort on platforms where directories
    /// cannot be opened for fsync.
    pub fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        match &self.inner {
            Inner::Real(fuse) => {
                if let Some(f) = fuse {
                    f.point();
                }
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
                Ok(())
            }
            Inner::Mem(m) => {
                let mut st = Self::lock(m);
                st.check_alive()?;
                st.point(None)?;
                let in_dir = |p: &Path| p.parent() == Some(dir);
                let pending = std::mem::take(&mut st.pending);
                let mut keep = Vec::with_capacity(pending.len());
                for op in pending {
                    match &op {
                        PendingOp::Rename { from, to } if in_dir(from) || in_dir(to) => {
                            let v = st.durable.remove(from).unwrap_or_default();
                            st.durable.insert(to.clone(), v);
                        }
                        PendingOp::Remove { path } if in_dir(path) => {
                            st.durable.remove(path);
                        }
                        _ => keep.push(op),
                    }
                }
                st.pending = keep;
                Ok(())
            }
        }
    }

    /// Creates a directory and all ancestors (treated as immediately
    /// durable; not an injection point).
    pub fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match &self.inner {
            Inner::Real(_) => std::fs::create_dir_all(dir),
            Inner::Mem(m) => {
                let mut st = Self::lock(m);
                st.check_alive()?;
                let mut d = dir.to_path_buf();
                loop {
                    st.dirs.insert(d.clone());
                    match d.parent() {
                        Some(p) if !p.as_os_str().is_empty() => d = p.to_path_buf(),
                        _ => break,
                    }
                }
                Ok(())
            }
        }
    }

    /// Lists the regular files directly inside `dir`, as full paths in
    /// sorted order.
    pub fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match &self.inner {
            Inner::Real(_) => {
                let mut out = Vec::new();
                for entry in std::fs::read_dir(dir)? {
                    let path = entry?.path();
                    if path.is_file() {
                        out.push(path);
                    }
                }
                out.sort();
                Ok(out)
            }
            Inner::Mem(m) => {
                let st = Self::lock(m);
                st.check_alive()?;
                if !st.dirs.contains(dir) {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no such directory: {}", dir.display()),
                    ));
                }
                Ok(st
                    .live
                    .keys()
                    .filter(|p| p.parent() == Some(dir))
                    .cloned()
                    .collect())
            }
        }
    }

    /// Whether a file or known directory exists (in the live view).
    pub fn exists(&self, path: &Path) -> bool {
        match &self.inner {
            Inner::Real(_) => path.exists(),
            Inner::Mem(m) => {
                let st = Self::lock(m);
                !st.crashed && (st.live.contains_key(path) || st.dirs.contains(path))
            }
        }
    }

    /// Durably replaces `path` with `bytes`: write to `path + ".tmp"`,
    /// fsync the temp file, rename over `path`, fsync the parent
    /// directory. A crash at any point leaves either the old content,
    /// the new content, or a stray `.tmp` file — never a torn `path`.
    pub fn atomic_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        self.write(&tmp, bytes)?;
        self.fsync_file(&tmp)?;
        self.rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                self.fsync_dir(parent)?;
            }
        }
        Ok(())
    }

    /// Snapshot of the durable view of an in-memory handle (test/bench
    /// introspection). Empty for real handles.
    pub fn durable_snapshot(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        match self.mem_state() {
            Some(m) => Self::lock(m).durable.clone(),
            None => BTreeMap::new(),
        }
    }
}

/// The atomic-write temporary for `path` (`<path>.tmp`).
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(TMP_SUFFIX);
    PathBuf::from(name)
}

/// True when `path` names an atomic-write temporary.
pub fn is_tmp_path(path: &Path) -> bool {
    path.as_os_str()
        .to_str()
        .is_some_and(|s| s.ends_with(TMP_SUFFIX))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn mem_round_trips_and_lists() {
        let vfs = Vfs::mem();
        vfs.create_dir_all(&p("/d/sub")).unwrap();
        vfs.write(&p("/d/b.txt"), b"bee").unwrap();
        vfs.write(&p("/d/a.txt"), b"ay").unwrap();
        vfs.write(&p("/d/sub/c.txt"), b"sea").unwrap();
        assert_eq!(vfs.read(&p("/d/a.txt")).unwrap(), b"ay");
        assert_eq!(
            vfs.read_dir(&p("/d")).unwrap(),
            vec![p("/d/a.txt"), p("/d/b.txt")]
        );
        assert!(vfs.exists(&p("/d/sub")));
        assert!(!vfs.exists(&p("/d/nope.txt")));
        vfs.rename(&p("/d/a.txt"), &p("/d/z.txt")).unwrap();
        vfs.remove_file(&p("/d/b.txt")).unwrap();
        assert_eq!(vfs.read_dir(&p("/d")).unwrap(), vec![p("/d/z.txt")]);
        assert!(vfs.read(&p("/nope")).is_err());
        assert!(vfs.write(&p("/nodir/x"), b"x").is_err());
        assert!(vfs.remove_file(&p("/d/b.txt")).is_err());
        assert!(vfs.rename(&p("/d/gone"), &p("/d/x")).is_err());
    }

    #[test]
    fn unsynced_writes_do_not_survive_a_crash() {
        let vfs = Vfs::mem();
        vfs.create_dir_all(&p("/d")).unwrap();
        vfs.write(&p("/d/old.txt"), b"old").unwrap();
        vfs.fsync_file(&p("/d/old.txt")).unwrap();
        vfs.arm(CrashPlan::count_only());
        // One un-fsynced write, then crash at the next point. Across all
        // seeds the durable outcome must be absent, a prefix, or the full
        // content — never anything else; the fsynced file always survives.
        for seed in 0..32 {
            let v = Vfs::mem();
            v.create_dir_all(&p("/d")).unwrap();
            v.write(&p("/d/old.txt"), b"old").unwrap();
            v.fsync_file(&p("/d/old.txt")).unwrap();
            v.arm(CrashPlan::crash_at(1, seed));
            v.write(&p("/d/new.txt"), b"abcdef").unwrap();
            let err = v.write(&p("/d/other.txt"), b"x").unwrap_err();
            assert!(err.to_string().contains("injected crash"), "{err}");
            assert!(v.crashed());
            assert!(v.read(&p("/d/old.txt")).is_err(), "reads fail pre-reboot");
            v.reboot();
            assert_eq!(v.read(&p("/d/old.txt")).unwrap(), b"old");
            match v.read(&p("/d/new.txt")) {
                Ok(bytes) => assert!(b"abcdef".starts_with(&bytes[..])),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
            }
            // `other.txt` was in flight: same prefix-or-absent contract.
            match v.read(&p("/d/other.txt")) {
                Ok(bytes) => assert!(b"x".starts_with(&bytes[..])),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
            }
        }
    }

    #[test]
    fn atomic_write_is_old_or_new_at_every_crash_point() {
        // Count the schedule once, then crash at every point under
        // several seeds: the destination must hold the old or the new
        // content — never a torn file (stray .tmp files are allowed).
        let dst = p("/d/file.bin");
        let setup = || {
            let v = Vfs::mem();
            v.create_dir_all(&p("/d")).unwrap();
            v.atomic_write(&dst, b"old-content").unwrap();
            v
        };
        let counter = setup();
        counter.arm(CrashPlan::count_only());
        counter.atomic_write(&dst, b"new-content!").unwrap();
        let points = counter.points();
        assert!(points >= 4, "expected ≥4 injection points, got {points}");
        for k in 0..points {
            for seed in 0..8 {
                let v = setup();
                v.arm(CrashPlan::crash_at(k, seed));
                let err = v.atomic_write(&dst, b"new-content!").unwrap_err();
                assert!(err.to_string().contains("injected crash"));
                v.reboot();
                let got = v.read(&dst).unwrap();
                assert!(
                    got == b"old-content" || got == b"new-content!",
                    "crash at {k} seed {seed}: torn destination {got:?}"
                );
            }
        }
        // Without a crash the new content is durable.
        let v = setup();
        v.atomic_write(&dst, b"new-content!").unwrap();
        v.arm(CrashPlan::crash_at(0, 7));
        let _ = v.write(&p("/d/unrelated"), b"x");
        v.reboot();
        assert_eq!(v.read(&dst).unwrap(), b"new-content!");
    }

    #[test]
    fn rename_without_content_fsync_can_leave_a_truncated_file() {
        // The delayed-allocation hazard the atomic-write protocol exists
        // to prevent: write + rename with NO file fsync can produce a
        // destination with empty or partial content after a crash.
        let mut saw_truncated = false;
        for seed in 0..64 {
            let v = Vfs::mem();
            v.create_dir_all(&p("/d")).unwrap();
            v.arm(CrashPlan::crash_at(2, seed));
            v.write(&p("/d/t.tmp"), b"payload").unwrap();
            v.rename(&p("/d/t.tmp"), &p("/d/dst")).unwrap();
            let _ = v.fsync_dir(&p("/d"));
            v.reboot();
            if let Ok(bytes) = v.read(&p("/d/dst")) {
                if bytes.len() < b"payload".len() {
                    saw_truncated = true;
                }
            }
        }
        assert!(
            saw_truncated,
            "adversarial model never produced the truncated-rename hazard"
        );
    }

    #[test]
    fn crash_schedules_are_deterministic() {
        let run = |k: u64, seed: u64| {
            let v = Vfs::mem();
            v.create_dir_all(&p("/d")).unwrap();
            v.arm(CrashPlan::crash_at(k, seed));
            for i in 0..6u32 {
                if v.write(&p(&format!("/d/f{i}")), &[i as u8; 9]).is_err() {
                    break;
                }
            }
            v.reboot();
            v.durable_snapshot()
        };
        for k in 0..6 {
            assert_eq!(run(k, 3), run(k, 3), "crash at {k} not reproducible");
        }
        assert_eq!(run(4, 1), run(4, 1));
    }

    #[test]
    fn tmp_path_helpers() {
        assert_eq!(tmp_path(&p("/a/b.ldoc")), p("/a/b.ldoc.tmp"));
        assert!(is_tmp_path(&p("/a/b.ldoc.tmp")));
        assert!(!is_tmp_path(&p("/a/b.ldoc")));
    }

    #[test]
    fn real_mode_round_trips_through_std_fs() {
        let dir = std::env::temp_dir().join("lockdoc-vfs-real-test");
        std::fs::remove_dir_all(&dir).ok();
        let vfs = Vfs::real();
        vfs.create_dir_all(&dir).unwrap();
        let f = dir.join("x.bin");
        vfs.atomic_write(&f, b"hello").unwrap();
        assert_eq!(vfs.read(&f).unwrap(), b"hello");
        assert!(vfs.exists(&f));
        assert_eq!(vfs.read_dir(&dir).unwrap(), vec![f.clone()]);
        vfs.remove_file(&f).unwrap();
        assert!(!vfs.exists(&f));
        assert_eq!(vfs.points(), 0, "unfused real handles count nothing");
        std::fs::remove_dir_all(&dir).ok();
    }
}
