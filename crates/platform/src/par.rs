//! Deterministic scoped parallel execution on `std::thread::scope` —
//! zero dependencies, no unsafe, no global state.
//!
//! The analysis phases of the pipeline (derivation, checking, violation
//! scanning, threshold sweeps) are embarrassingly parallel per shard, but
//! their *outputs* must stay byte-identical at any worker count so golden
//! tests and trace diffs remain meaningful. [`par_map`] therefore provides
//! an *ordered* map: results come back in input order regardless of
//! completion order, and `jobs = 1` runs the closure inline on the calling
//! thread (the exact serial path, no pool, no channels).
//!
//! Work distribution is a shared atomic cursor over the input slice, so
//! uneven shards self-balance; each worker accumulates `(index, result)`
//! pairs locally and the merge step restores input order. Panics inside
//! worker closures are propagated to the caller with their original
//! payload.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads available, with a serial fallback.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves the worker count for a pipeline run.
///
/// Precedence: an explicit request (e.g. a `--jobs` CLI flag), then the
/// `LOCKDOC_JOBS` environment variable, then the machine's available
/// parallelism. Requests above the core count are clamped to
/// [`available_jobs`]: every pass is output-identical at any worker count,
/// so oversubscribing buys nothing and measurably costs wall-clock
/// (`BENCH_import.json` shows jobs=4 on a 1-core box paying 2.4–2.6× over
/// serial). Setting `LOCKDOC_JOBS_FORCE=1` disables the clamp — the escape
/// hatch the identity gates and benches use to exercise the true
/// multi-worker code path on any machine. The result is always at least 1;
/// `1` selects the exact serial code path in [`par_map`].
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    let requested = explicit.map(|n| n.max(1)).or_else(|| {
        let v = std::env::var("LOCKDOC_JOBS").ok()?;
        v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
    });
    let forced = std::env::var("LOCKDOC_JOBS_FORCE").is_ok_and(|v| v.trim() == "1");
    match requested {
        Some(n) if forced => n,
        Some(n) => n.min(available_jobs()).max(1),
        None => available_jobs(),
    }
}

/// Applies `f` to every item and returns the results **in input order**.
///
/// With `jobs <= 1` (or fewer than two items) this is exactly
/// `items.iter().map(f).collect()` on the calling thread. Otherwise up to
/// `min(jobs, items.len())` scoped workers pull indices from a shared
/// atomic cursor, and the results are merged back into input order, so the
/// output is independent of scheduling.
///
/// # Panics
///
/// If `f` panics for any item, the panic payload is re-raised on the
/// calling thread after the remaining workers wind down.
///
/// # Examples
///
/// ```
/// use lockdoc_platform::par::par_map;
///
/// let squares = par_map(4, &[1u64, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    debug_assert_eq!(indexed.len(), items.len());
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map`] with per-worker scratch state: `init` builds one state per
/// worker (exactly once on the serial path), and `f` receives `&mut`
/// access to its worker's state alongside each item.
///
/// The state exists for *caches only* — e.g. a resolution cache shared
/// across however many shards one worker happens to process. Which items
/// share a state is scheduling-dependent, so `f`'s result for an item must
/// not observably depend on the state's history; under that contract the
/// output is byte-identical at any worker count, and `jobs = 1` (one state,
/// every item, in order) is the exact serial path.
///
/// # Panics
///
/// If `init` or `f` panics, the payload is re-raised on the calling thread
/// after the remaining workers wind down.
pub fn par_map_init<T, R, S, I, F>(jobs: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(&mut state, item)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    debug_assert_eq!(indexed.len(), items.len());
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Splits `items` into at most `jobs` contiguous chunks (fewer when there
/// are fewer items). Used by callers whose shards want to share per-chunk
/// state (e.g. a resolution cache): `jobs = 1` yields a single chunk, the
/// exact serial path.
pub fn chunks_for<T>(jobs: usize, items: &[T]) -> Vec<&[T]> {
    if items.is_empty() {
        return Vec::new();
    }
    let size = items.len().div_ceil(jobs.max(1));
    items.chunks(size).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Make later items finish earlier by giving them less work.
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(8, &items, |&x| {
            let spin = (100 - x) * 50;
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ x);
            }
            std::hint::black_box(acc);
            x * 2
        });
        let want: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn serial_and_parallel_agree_for_any_job_count() {
        let items: Vec<u32> = (0..37).collect();
        let serial = par_map(1, &items, |&x| x.wrapping_mul(2654435761));
        for jobs in [2, 3, 4, 7, 16, 64] {
            let parallel = par_map(jobs, &items, |&x| x.wrapping_mul(2654435761));
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        assert_eq!(par_map(4, &[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(4, &[9u8], |&x| x + 1), vec![10]);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(4, &items, |&x| {
                if x == 13 {
                    panic!("unlucky shard");
                }
                x
            })
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "unlucky shard");
    }

    /// One test function covers the clamp and its escape hatch: the force
    /// branch mutates process-global env vars, so interleaving it with a
    /// separate clamp test would race.
    #[test]
    fn resolve_jobs_clamps_to_available_cores_unless_forced() {
        let cores = available_jobs();
        assert_eq!(resolve_jobs(Some(3)), 3.min(cores).max(1));
        assert_eq!(resolve_jobs(Some(1)), 1);
        assert_eq!(resolve_jobs(Some(0)), 1, "0 clamps to serial");
        assert_eq!(
            resolve_jobs(Some(cores + 7)),
            cores,
            "oversubscription clamps"
        );
        // Without an explicit request the result is env- or
        // hardware-derived, but always usable and never oversubscribed.
        assert!(resolve_jobs(None) >= 1);
        assert!(resolve_jobs(None) <= cores.max(1));
        // LOCKDOC_JOBS_FORCE=1 lifts the clamp (identity gates rely on
        // exercising the real multi-worker path on 1-core CI boxes).
        std::env::set_var("LOCKDOC_JOBS_FORCE", "1");
        assert_eq!(resolve_jobs(Some(cores + 7)), cores + 7);
        std::env::set_var("LOCKDOC_JOBS_FORCE", "0");
        assert_eq!(resolve_jobs(Some(cores + 7)), cores);
        std::env::remove_var("LOCKDOC_JOBS_FORCE");
    }

    #[test]
    fn par_map_init_matches_par_map_and_reuses_state() {
        use std::collections::HashMap;
        let items: Vec<u64> = (0..57).collect();
        let plain = par_map(4, &items, |&x| x.wrapping_mul(0x9e37_79b9));
        for jobs in [1usize, 2, 4, 16] {
            let with_cache = par_map_init(jobs, &items, HashMap::<u64, u64>::new, |cache, &x| {
                *cache
                    .entry(x)
                    .or_insert_with(|| x.wrapping_mul(0x9e37_79b9))
            });
            assert_eq!(with_cache, plain, "jobs = {jobs}");
        }
        // Serial path: exactly one state is built for all items.
        let inits = AtomicUsize::new(0);
        let out = par_map_init(
            1,
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |state, &x| {
                *state += 1;
                *state + x
            },
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        // With one state the running count is deterministic: item i is the
        // (i+1)-th call.
        let want: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| i as u64 + 1 + x)
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn par_map_init_propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_init(
                4,
                &items,
                || (),
                |_, &x| {
                    if x == 13 {
                        panic!("unlucky shard");
                    }
                    x
                },
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn chunks_cover_input_in_order() {
        let items: Vec<u32> = (0..10).collect();
        for jobs in [1, 2, 3, 4, 10, 99] {
            let chunks = chunks_for(jobs, &items);
            assert!(chunks.len() <= jobs.max(1));
            let flat: Vec<u32> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(flat, items, "jobs = {jobs}");
        }
        assert!(chunks_for::<u32>(4, &[]).is_empty());
        assert_eq!(chunks_for(1, &items), vec![&items[..]]);
    }
}
