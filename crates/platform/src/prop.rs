//! A minimal property-testing harness replacing `proptest`.
//!
//! Model:
//! * A *generator* is any `Fn(&mut Rng) -> T`.
//! * A *property* is any `Fn(&T) -> Result<(), String>`; the
//!   [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`] macros
//!   return the error for you.
//! * [`check`] runs `Config::cases` cases, each from a seed derived off
//!   the run seed. On failure it greedily shrinks via the [`Shrink`]
//!   trait and panics with the run seed, the shrunk input, and a
//!   copy-pasteable reproduction command.
//!
//! Determinism: the default run seed is a constant, so test runs are
//! reproducible by default. Set `LOCKDOC_PROP_SEED` (decimal or `0x…`)
//! to explore a different stream and `LOCKDOC_PROP_CASES` to change the
//! case count. A failure printed as `run seed 0xABC` reproduces with
//! `LOCKDOC_PROP_SEED=0xABC cargo test -q <test-name>`.
//!
//! Old `proptest` regression files are retired by pinning each recorded
//! counterexample as a named `#[test]` that calls the property function
//! with the literal input (see `tests/robustness.rs`).

use crate::rng::{derive_seed, Rng};

/// Default run seed: constant so unconfigured runs are deterministic.
/// The grouping spells "loc doc seed", which clippy cannot appreciate.
#[allow(clippy::unusual_byte_groupings)]
pub const DEFAULT_SEED: u64 = 0x10C_D0C5_EED;

/// Default number of cases per property (proptest's default).
pub const DEFAULT_CASES: u32 = 256;

/// Harness configuration, usually taken from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Run seed; case `i` uses `derive_seed(seed, i)`.
    pub seed: u64,
    /// Cap on property evaluations spent shrinking one failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            max_shrink_iters: 4096,
        }
    }
}

impl Config {
    /// Reads `LOCKDOC_PROP_CASES` and `LOCKDOC_PROP_SEED` overrides.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(cases) = std::env::var("LOCKDOC_PROP_CASES") {
            if let Ok(n) = cases.trim().parse::<u32>() {
                cfg.cases = n.max(1);
            }
        }
        if let Ok(seed) = std::env::var("LOCKDOC_PROP_SEED") {
            if let Some(n) = parse_seed(seed.trim()) {
                cfg.seed = n;
            }
        }
        cfg
    }
}

fn parse_seed(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        text.replace('_', "").parse().ok()
    }
}

/// Runs a property over `Config::from_env().cases` generated inputs.
/// Panics (test failure) on the first counterexample, after shrinking.
pub fn check<T, G, P>(name: &str, gen: G, prop: P)
where
    T: std::fmt::Debug + Clone + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    check_with(&Config::from_env(), name, gen, prop);
}

/// [`check`] with an explicit configuration.
pub fn check_with<T, G, P>(cfg: &Config, name: &str, gen: G, prop: P)
where
    T: std::fmt::Debug + Clone + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let case_seed = derive_seed(cfg.seed, case as u64);
        let mut rng = Rng::seed_from_u64(case_seed);
        let input = gen(&mut rng);
        if let Err(msg) = prop(&input) {
            let (shrunk, msg, steps) = shrink_failure(input, msg, &prop, cfg.max_shrink_iters);
            panic!(
                "property '{name}' failed at case {case}/{cases} (run seed 0x{seed:x})\n\
                 shrunk input ({steps} shrink steps): {shrunk:?}\n\
                 error: {msg}\n\
                 reproduce: LOCKDOC_PROP_SEED=0x{seed:x} cargo test -q {name}",
                cases = cfg.cases,
                seed = cfg.seed,
            );
        }
    }
}

fn shrink_failure<T, P>(mut cur: T, mut msg: String, prop: &P, max_iters: u32) -> (T, String, u32)
where
    T: Clone + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0u32;
    let mut budget = max_iters;
    'outer: loop {
        for cand in cur.shrink() {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(m) = prop(&cand) {
                cur = cand;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (cur, msg, steps)
}

/// Candidate-producing shrinker. Candidates must be "smaller" by some
/// well-founded measure; the greedy loop in [`check`] takes the first
/// candidate that still fails and repeats until none do.
pub trait Shrink: Sized {
    /// Smaller candidate replacements, in preference order. Default: none.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let x = *self;
                let mut out = Vec::new();
                if x == 0 {
                    return out;
                }
                out.push(0);
                #[allow(unused_comparisons)]
                if x < 0 {
                    if let Some(pos) = x.checked_neg() {
                        out.push(pos);
                    }
                }
                // Halving walk toward x: 0, x/2, 3x/4, …, x-1.
                let mut diff = x / 2;
                while diff != 0 {
                    let cand = x - diff;
                    if cand != x && cand != 0 {
                        out.push(cand);
                    }
                    diff /= 2;
                }
                out
            }
        }
    )*};
}

impl_shrink_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let x = *self;
        if x == 0.0 || !x.is_finite() {
            return Vec::new();
        }
        let mut out = vec![0.0];
        let trunc = x.trunc();
        if trunc != x {
            out.push(trunc);
        }
        out.push(x / 2.0);
        out
    }
}

impl Shrink for char {}

impl Shrink for String {
    fn shrink(&self) -> Vec<Self> {
        let chars: Vec<char> = self.chars().collect();
        drop_chunks(&chars)
            .into_iter()
            .map(|cs| cs.into_iter().collect())
            .collect()
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = drop_chunks(self);
        // Then shrink elements in place (a few candidates each, to keep
        // the frontier bounded; the budget in check() caps total work).
        for i in 0..self.len() {
            for cand in self[i].shrink().into_iter().take(4) {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// Sublist candidates: remove chunks of halving sizes at every offset.
fn drop_chunks<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let n = items.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let mut k = n;
    while k > 0 {
        let mut i = 0;
        while i < n {
            let end = (i + k).min(n);
            let mut v = Vec::with_capacity(n - (end - i));
            v.extend_from_slice(&items[..i]);
            v.extend_from_slice(&items[end..]);
            out.push(v);
            i += k;
        }
        k /= 2;
    }
    out
}

impl<T: Shrink> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(inner) => {
                let mut out = vec![None];
                out.extend(inner.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink() {
            out.push((a, self.1.clone()));
        }
        for b in self.1.shrink() {
            out.push((self.0.clone(), b));
        }
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone, C: Shrink + Clone> Shrink for (A, B, C) {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink() {
            out.push((a, self.1.clone(), self.2.clone()));
        }
        for b in self.1.shrink() {
            out.push((self.0.clone(), b, self.2.clone()));
        }
        for c in self.2.shrink() {
            out.push((self.0.clone(), self.1.clone(), c));
        }
        out
    }
}

impl<A, B, C, D> Shrink for (A, B, C, D)
where
    A: Shrink + Clone,
    B: Shrink + Clone,
    C: Shrink + Clone,
    D: Shrink + Clone,
{
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink() {
            out.push((a, self.1.clone(), self.2.clone(), self.3.clone()));
        }
        for b in self.1.shrink() {
            out.push((self.0.clone(), b, self.2.clone(), self.3.clone()));
        }
        for c in self.2.shrink() {
            out.push((self.0.clone(), self.1.clone(), c, self.3.clone()));
        }
        for d in self.3.shrink() {
            out.push((self.0.clone(), self.1.clone(), self.2.clone(), d));
        }
        out
    }
}

/// Generator helper: a vec whose length is drawn from `len` and whose
/// elements come from `elem`.
pub fn vec_of<T>(
    rng: &mut Rng,
    len: std::ops::Range<usize>,
    mut elem: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = if len.start + 1 >= len.end {
        len.start
    } else {
        rng.gen_range(len)
    };
    (0..n).map(|_| elem(rng)).collect()
}

/// Generator helper: a string of printable ASCII plus newline, the
/// class the old robustness generators used (`[ -~\n]`).
pub fn ascii_garbage(rng: &mut Rng, len: std::ops::Range<usize>) -> String {
    vec_of(rng, len, |r| {
        if r.gen_bool(0.05) {
            '\n'
        } else {
            r.gen_range(0x20u8..0x7f) as char
        }
    })
    .into_iter()
    .collect()
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`: early-return
/// an `Err(String)` from a property when the condition fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// `prop_assert_eq!(a, b)`: equality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left: {:?}\n  right: {:?} ({}:{})",
                format!($($arg)+),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)`: inequality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

/// `forall!(name, |rng| gen, |input| property)` — sugar over [`check`].
#[macro_export]
macro_rules! forall {
    ($name:expr, $gen:expr, $prop:expr $(,)?) => {
        $crate::prop::check($name, $gen, $prop)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config {
            cases: 50,
            ..Config::default()
        };
        let mut ran = 0u32;
        check_with(
            &cfg,
            "always_true",
            |rng| rng.gen_range(0u64..100),
            |_| {
                // Property closures take &T; count via a Cell-free trick.
                Ok(())
            },
        );
        // Separate count pass (check_with takes Fn, not FnMut).
        let counter = std::cell::Cell::new(0u32);
        check_with(
            &cfg,
            "count_cases",
            |rng| rng.gen_range(0u64..100),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        ran += counter.get();
        assert_eq!(ran, 50);
    }

    #[test]
    fn failure_panics_with_seed_and_shrunk_input() {
        let cfg = Config {
            cases: 200,
            ..Config::default()
        };
        let result = std::panic::catch_unwind(|| {
            check_with(
                &cfg,
                "sum_small",
                |rng| vec_of(rng, 0..20, |r| r.gen_range(0u64..100)),
                |v: &Vec<u64>| {
                    prop_assert!(v.iter().sum::<u64>() < 50, "sum too big");
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("run seed 0x10cd0c5eed"), "msg: {msg}");
        assert!(msg.contains("LOCKDOC_PROP_SEED=0x10cd0c5eed"), "msg: {msg}");
        // Greedy shrinking should land on a minimal-ish counterexample:
        // a single element >= 50.
        assert!(msg.contains("shrunk input"), "msg: {msg}");
        let start = msg.find("[").unwrap();
        let end = msg.find("]").unwrap();
        let items: Vec<u64> = msg[start + 1..end]
            .split(',')
            .map(|s| s.trim().parse().unwrap())
            .collect();
        assert_eq!(items.len(), 1, "not minimal: {items:?}");
        assert!(items[0] >= 50 && items[0] <= 60, "overshrunk: {items:?}");
    }

    #[test]
    fn same_seed_reproduces_same_counterexample() {
        let run = |seed: u64| -> String {
            let cfg = Config {
                cases: 100,
                seed,
                ..Config::default()
            };
            let result = std::panic::catch_unwind(|| {
                check_with(
                    &cfg,
                    "never_big",
                    |rng| rng.gen_range(0u64..1000),
                    |&x| {
                        prop_assert!(x < 900);
                        Ok(())
                    },
                );
            });
            *result.unwrap_err().downcast::<String>().unwrap()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn int_shrink_walks_toward_zero() {
        let c = 100u64.shrink();
        assert_eq!(c[0], 0);
        assert!(c.contains(&50));
        assert!(c.contains(&99));
        assert!((-8i64).shrink().contains(&8));
        assert!(0u32.shrink().is_empty());
    }

    #[test]
    fn vec_shrink_offers_sublists_first() {
        let v = vec![1u8, 2, 3, 4];
        let c = v.shrink();
        assert_eq!(c[0], Vec::<u8>::new());
        assert!(c.iter().any(|s| s.len() == 2));
        assert!(c.iter().any(|s| *s == vec![0u8, 2, 3, 4]));
    }

    #[test]
    fn f64_shrink_prefers_zero_then_truncation() {
        let c = 3.75f64.shrink();
        assert_eq!(c[0], 0.0);
        assert!(c.contains(&3.0));
        assert!(0.0f64.shrink().is_empty());
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("0X10"), Some(16));
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x10c_d0c"), Some(0x10c_d0c));
        assert_eq!(parse_seed("zzz"), None);
    }

    #[test]
    fn ascii_garbage_stays_in_class() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            let s = ascii_garbage(&mut rng, 0..300);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }
}
