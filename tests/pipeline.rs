//! End-to-end integration tests: simulated kernel -> binary trace ->
//! relational store -> rule derivation -> checking -> violation finding,
//! validated against the substrate's ground truth.

use ksim::config::SimConfig;
use ksim::rules;
use ksim::subsys::Machine;
use lockdoc_core::checker::{check_rules, Verdict};
use lockdoc_core::derive::{derive, DeriveConfig};
use lockdoc_core::rulespec::parse_rules;
use lockdoc_core::violation::find_violations;
use lockdoc_trace::codec::{read_trace, write_trace};
use lockdoc_trace::db::{import, TraceDb};
use lockdoc_trace::event::AccessKind;

fn run_pipeline(ops: u64, seed: u64, faults: bool) -> TraceDb {
    let mut cfg = SimConfig::with_seed(seed);
    if faults {
        cfg = cfg.with_faults(rules::default_fault_plan());
    }
    let mut machine = Machine::boot(cfg);
    machine.run_mix(ops);
    let trace = machine.finish();
    // Round-trip through the binary codec, as a real deployment would.
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).expect("encode");
    let trace = read_trace(&mut buf.as_slice()).expect("decode");
    import(&trace, &rules::filter_config(), 1)
}

/// Ground-truth oracle: on a clean (fault-free) run, the derivator must
/// recover the designed locking discipline for these load-bearing members.
#[test]
fn derivation_recovers_ground_truth_rules() {
    let db = run_pipeline(6_000, 0x0913, false);
    let mined = derive(&db, &DeriveConfig::default());

    let expect = [
        // (group, member, kind, expected winning rule)
        ("inode:ext4", "i_state", "w", "ES(i_lock in inode)"),
        (
            "inode:ext4",
            "i_bytes",
            "w",
            "ES(i_rwsem in inode) -> ES(i_lock in inode)",
        ),
        ("inode:ext4", "i_mtime", "w", "ES(i_rwsem in inode)"),
        ("inode:ext4", "i_uid", "w", "ES(i_rwsem in inode)"),
        (
            "inode:ext4",
            "i_sb_list",
            "w",
            "EO(s_inode_list_lock in super_block)",
        ),
        ("inode:ext4", "i_size", "r", "no lock needed"),
        (
            "inode:tmpfs",
            "i_io_list",
            "w",
            "EO(wb.list_lock in backing_dev_info)",
        ),
        (
            "dentry",
            "d_hash",
            "w",
            "dentry_hash_lock -> ES(d_lock in dentry)",
        ),
        ("dentry", "d_inode", "w", "ES(d_lock in dentry)"),
        (
            "journal_t",
            "j_running_transaction",
            "w",
            "ES(j_state_lock in journal_t)",
        ),
        (
            "transaction_t",
            "t_buffers",
            "w",
            "EO(j_list_lock in journal_t)",
        ),
        (
            "journal_head",
            "b_transaction",
            "w",
            "EO(j_list_lock in journal_t)",
        ),
        (
            "pipe_inode_info",
            "nrbufs",
            "w",
            "ES(mutex in pipe_inode_info)",
        ),
        (
            "block_device",
            "bd_openers",
            "w",
            "ES(bd_mutex in block_device)",
        ),
        ("cdev", "kobj", "w", "no lock needed"),
        ("cdev", "list", "w", "cdev_lock"),
        ("super_block", "s_count", "w", "sb_lock"),
    ];
    for (group, member, kind, want) in expect {
        let kind = if kind == "w" {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let rule = mined
            .group(group)
            .unwrap_or_else(|| panic!("group {group} missing"))
            .rule_for(member, kind)
            .unwrap_or_else(|| panic!("{group}.{member}:{kind} not mined"));
        assert_eq!(
            rule.winner.hypothesis.describe(),
            want,
            "{group}.{member}:{kind:?}"
        );
    }
}

/// The famous i_hash case (paper Sec. 7.4): because `__remove_inode_hash`
/// rewrites neighbour `i_hash` without their `i_lock`, LockDoc concludes
/// the global `inode_hash_lock` alone protects `i_hash` writes —
/// contradicting the documentation, exactly as in the paper.
#[test]
fn i_hash_mystery_reproduces() {
    let db = run_pipeline(8_000, 0x0914, false);
    let mined = derive(&db, &DeriveConfig::default());
    // Pool the ext4 subclass (most churn). The neighbour writes must have
    // pushed the two-lock rule below 100 %.
    let group = mined.group("inode:ext4").expect("ext4 group");
    let rule = group
        .rule_for("i_hash", AccessKind::Write)
        .expect("i_hash write rule");
    assert_eq!(
        rule.winner.hypothesis.describe(),
        "inode_hash_lock",
        "the global hash lock alone wins"
    );
    // The documented two-lock rule is ambivalent (high but < 100 % support).
    let documented =
        parse_rules("inode.i_hash:w = inode_hash_lock -> ES(i_lock in inode)").unwrap();
    let checked = check_rules(&db, &documented);
    assert_eq!(checked[0].verdict, Verdict::Ambivalent);
    assert!(checked[0].sr > 0.5, "sr = {}", checked[0].sr);
}

/// On a clean run the violation finder must stay silent for members whose
/// discipline has no deviant paths.
#[test]
fn clean_members_produce_no_violations() {
    let db = run_pipeline(5_000, 0x0915, false);
    let mined = derive(&db, &DeriveConfig::default());
    let violations = find_violations(&db, &mined, 50);
    for v in &violations {
        // i_flags violations only exist when the fault plan is active.
        assert!(
            !v.members.contains("i_flags"),
            "{}: unexpected i_flags violation",
            v.group_name
        );
        // The strictly disciplined members never show up.
        for clean in ["i_state", "d_hash", "i_sb_list", "t_buffers"] {
            assert!(
                !v.members.contains(clean),
                "{}: unexpected violation on {clean}",
                v.group_name
            );
        }
    }
}

/// With the fault plan active, every injected i_flags fault that executed
/// is reported as a violation (perfect recall against the oracle).
#[test]
fn fault_oracle_recall() {
    let mut cfg = SimConfig::with_seed(0x0916).with_faults(rules::default_fault_plan());
    cfg.tasks = 3;
    let mut machine = Machine::boot(cfg);
    machine.run_mix(12_000);
    let injected = machine.k.fault_log.count("inode_set_flags_lockless") as u64;
    let trace = machine.finish();
    let db = import(&trace, &rules::filter_config(), 1);
    let mined = derive(&db, &DeriveConfig::default());
    let violations = find_violations(&db, &mined, 1000);
    let iflags_events: u64 = violations
        .iter()
        .flat_map(|v| v.examples.iter())
        .filter(|e| e.member_name == "i_flags")
        .count() as u64;
    assert!(injected > 0, "the bug fired at least once");
    // One lock-free write per firing (the paired read is WoR-folded).
    assert_eq!(iflags_events, injected, "perfect recall vs the oracle");
}

/// Subclass separation: proc inodes mine different rules than ext4 (the
/// reason the paper derives `struct inode` rules per filesystem).
#[test]
fn subclassing_separates_disciplines() {
    let db = run_pipeline(6_000, 0x0917, false);
    let mined = derive(&db, &DeriveConfig::default());
    let ext4 = mined.group("inode:ext4").expect("ext4");
    let proc = mined.group("inode:proc").expect("proc");
    // ext4 files get written (journalled metadata discipline); proc
    // supports no data ops at all.
    assert!(ext4.rule_for("i_size", AccessKind::Write).is_some());
    assert!(proc.rule_for("i_size", AccessKind::Write).is_none());
    // proc attribute reads are lock-free (proc skips locking by design).
    for member in ["i_mode", "i_uid", "i_size", "i_nlink", "i_mtime"] {
        let rule = proc
            .rule_for(member, AccessKind::Read)
            .unwrap_or_else(|| panic!("proc {member}:r missing"));
        assert!(
            rule.winner.is_no_lock(),
            "proc {member}:r should be lock-free"
        );
    }
}

/// The binary codec preserves every event of a real workload trace.
#[test]
fn codec_round_trips_workload_traces() {
    let mut machine = Machine::boot(SimConfig::with_seed(0x0918));
    machine.run_mix(1_500);
    let trace = machine.finish();
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).expect("encode");
    let back = read_trace(&mut buf.as_slice()).expect("decode");
    assert_eq!(trace, back);
    // Compactness sanity: well under 32 bytes per event.
    assert!(buf.len() < trace.len() * 32);
}

/// Determinism across the whole pipeline: identical seeds produce
/// identical mined rules; different seeds produce a different trace.
#[test]
fn pipeline_is_deterministic() {
    let a = run_pipeline(1_200, 42, true);
    let b = run_pipeline(1_200, 42, true);
    let c = run_pipeline(1_200, 43, true);
    let rules_a = derive(&a, &DeriveConfig::default());
    let rules_b = derive(&b, &DeriveConfig::default());
    assert_eq!(rules_a, rules_b);
    assert_eq!(a.accesses.len(), b.accesses.len());
    assert_ne!(a.accesses.len(), c.accesses.len());
}
