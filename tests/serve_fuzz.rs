//! Hostile-client fuzzing of `lockdoc serve`.
//!
//! A real daemon (socket mode, run in a background thread through the
//! public CLI entry point) is attacked with the protocol-level abuse an
//! open socket invites — malformed JSON, an oversized request line, a
//! half-line disconnect, a connection flood past `--max-conns`, a client
//! that stalls past the read deadline, and a (debug-only) request that
//! panics the handler — and must:
//!
//! * answer every well-formed request on a surviving connection,
//! * answer every bad request with exactly one `"ok": false` response,
//! * shed over-limit connections with a `retry: true` response,
//! * keep per-connection memory bounded (the oversized line is larger
//!   than the request cap and is discarded unbuffered),
//! * and afterwards still answer `derive` byte-identical to before the
//!   abuse — the snapshot never regresses.
//!
//! `--once` mode gets the same malformed-input sweep without a socket.

#![cfg(unix)]

use lockdoc_cli::run;
use lockdoc_platform::json::{parse, Json};
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn record(path: &Path, seed: &str) {
    run(&s(&[
        "trace",
        "--ops",
        "250",
        "--seed",
        seed,
        "--out",
        path.to_str().unwrap(),
    ]))
    .unwrap();
}

/// Connects with a short retry loop (the daemon thread races us to bind).
fn connect(sock: &Path) -> UnixStream {
    for _ in 0..200 {
        if let Ok(st) = UnixStream::connect(sock) {
            return st;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("serve socket never appeared at {}", sock.display());
}

/// Connects honoring backpressure: if the server sheds the connection
/// (`retry: true` — a previous client's slot may not be released yet),
/// backs off and reconnects, as the protocol instructs real clients to.
fn connect_ready(sock: &Path) -> UnixStream {
    for _ in 0..200 {
        let st = connect(sock);
        // A shed response arrives unprompted; probe with a short read.
        st.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let mut reader = BufReader::new(st.try_clone().unwrap());
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 && line.contains("retry") => {
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
            Ok(0) => {
                // Closed without a response: server mid-drain; retry.
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
            _ => {
                // Timeout (or anything else): the slot is ours.
                st.set_read_timeout(None).unwrap();
                return st;
            }
        }
    }
    panic!("server kept shedding connections");
}

/// Sends one request line and reads one response line.
fn roundtrip(stream: &mut UnixStream, line: &str) -> Json {
    writeln!(stream, "{line}").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    parse(resp.trim()).unwrap_or_else(|e| panic!("unparseable response {resp:?}: {e}"))
}

fn ok_of(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool).unwrap()
}

fn output_of(v: &Json) -> String {
    v.get("output").and_then(Json::as_str).unwrap().to_owned()
}

#[test]
fn serve_survives_hostile_clients() {
    let base = fresh_dir("lockdoc-suite-serve-fuzz");
    let t1 = base.join("a.ldoc");
    record(&t1, "61");
    let corpus = base.join("corpus");
    let d = corpus.to_str().unwrap().to_owned();
    run(&s(&["corpus", "add", t1.to_str().unwrap(), "--dir", &d])).unwrap();

    let sock = base.join("fuzz.sock");
    let sock_str = sock.to_str().unwrap().to_owned();
    let daemon = {
        let d = d.clone();
        let sock_str = sock_str.clone();
        std::thread::spawn(move || {
            run(&s(&[
                "serve",
                "--dir",
                &d,
                "--socket",
                &sock_str,
                "--max-request-bytes",
                "4096",
                "--timeout-ms",
                "400",
                "--max-conns",
                "2",
            ]))
            .unwrap()
        })
    };

    // Baseline answer from a clean connection.
    let mut c = connect(&sock);
    let baseline = roundtrip(&mut c, "{\"cmd\": \"derive\"}");
    assert!(ok_of(&baseline), "{baseline:?}");
    let baseline = output_of(&baseline);

    // 1. Malformed JSON: one error response per bad line, connection
    //    keeps serving afterwards.
    for bad in ["{ not json", "[]", "{\"cmd\": 7}", "{\"cmd\": \"nope\"}"] {
        let resp = roundtrip(&mut c, bad);
        assert!(!ok_of(&resp), "bad request accepted: {bad} -> {resp:?}");
        assert!(resp.get("error").is_some());
    }
    assert_eq!(
        output_of(&roundtrip(&mut c, "{\"cmd\": \"derive\"}")),
        baseline
    );

    // 2. Oversized line (64x the cap, no newline until the end): one
    //    "request too large" error, bounded memory, connection survives.
    let huge = format!(
        "{{\"cmd\": \"derive\", \"pad\": \"{}\"}}",
        "x".repeat(256 * 1024)
    );
    let resp = roundtrip(&mut c, &huge);
    assert!(!ok_of(&resp));
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("too large"),
        "{resp:?}"
    );
    assert_eq!(
        output_of(&roundtrip(&mut c, "{\"cmd\": \"derive\"}")),
        baseline
    );

    // 3. Half-line disconnect: a client that dies mid-request must not
    //    wedge the daemon.
    {
        let mut half = connect(&sock);
        half.write_all(b"{\"cmd\": \"der").unwrap();
        drop(half); // no newline ever arrives
    }

    // 4. Slow client: stalls past --timeout-ms holding a slot; the read
    //    deadline reclaims it. (`c` idles past its own deadline here too,
    //    so after the sleep every slot is demonstrably free again.)
    let idle = connect(&sock);
    std::thread::sleep(Duration::from_millis(700));
    drop(idle);
    drop(c);

    // 5. Connection flood past --max-conns (2): two fresh clients take
    //    both slots, the third gets a single retry:true shed response.
    let a = connect(&sock);
    let b = connect(&sock);
    let flooded = connect(&sock);
    let mut reader = BufReader::new(flooded.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let shed = parse(line.trim()).unwrap();
    assert!(
        !ok_of(&shed),
        "over-limit connection was not shed: {shed:?}"
    );
    assert_eq!(
        shed.get("retry").and_then(Json::as_bool),
        Some(true),
        "{shed:?}"
    );
    drop(flooded);
    drop(b);
    drop(a);

    // 6. Panic isolation (debug builds wire a __panic probe): the
    //    request gets an internal-error response, the daemon lives.
    #[cfg(debug_assertions)]
    {
        let mut p = connect_ready(&sock);
        let resp = roundtrip(&mut p, "{\"cmd\": \"__panic\"}");
        assert!(!ok_of(&resp));
        assert!(
            resp.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("internal error"),
            "{resp:?}"
        );
        assert_eq!(
            output_of(&roundtrip(&mut p, "{\"cmd\": \"derive\"}")),
            baseline
        );
    }

    // After all abuse: a fresh connection still answers byte-identically
    // — the snapshot never regressed.
    let mut fresh = connect_ready(&sock);
    assert_eq!(
        output_of(&roundtrip(&mut fresh, "{\"cmd\": \"derive\"}")),
        baseline
    );
    let status = roundtrip(&mut fresh, "{\"cmd\": \"status\"}");
    assert!(output_of(&status).contains("cache write errors:"));
    let bye = roundtrip(&mut fresh, "{\"cmd\": \"shutdown\"}");
    assert!(ok_of(&bye));
    drop(fresh);

    let summary = daemon.join().expect("daemon panicked");
    // At least the deliberate flood connection was shed (post-flood
    // connections may race slot release and be shed-then-retried too).
    let shed: u64 = summary
        .trim()
        .rsplit(' ')
        .next()
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unexpected summary: {summary}"));
    assert!(shed >= 1, "no connection was shed: {summary}");
    fs::remove_dir_all(&base).ok();
}

#[test]
fn serve_once_answers_every_malformed_line() {
    let base = fresh_dir("lockdoc-suite-serve-once-fuzz");
    let t1 = base.join("a.ldoc");
    record(&t1, "62");
    let corpus = base.join("corpus");
    let d = corpus.to_str().unwrap().to_owned();
    run(&s(&["corpus", "add", t1.to_str().unwrap(), "--dir", &d])).unwrap();

    let queries = base.join("q.jsonl");
    let huge = format!("{{\"pad\": \"{}\"}}", "y".repeat(8 * 1024));
    let mut input = String::new();
    input.push_str("{\"cmd\": \"derive\"}\n");
    input.push_str("{ not json\n");
    input.push_str(&huge);
    input.push('\n');
    input.push_str("{\"cmd\": \"status\"}\n");
    input.push_str("{\"cmd\": \"shutdown\"}\n");
    fs::write(&queries, &input).unwrap();

    let resp = run(&s(&[
        "serve",
        "--dir",
        &d,
        "--once",
        "--input",
        queries.to_str().unwrap(),
        "--max-request-bytes",
        "4096",
    ]))
    .unwrap();
    let lines: Vec<Json> = resp.lines().map(|l| parse(l).expect("json")).collect();
    assert_eq!(lines.len(), 5, "one response per request line:\n{resp}");
    assert_eq!(lines[0].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(lines[1].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(lines[2].get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        lines[2]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("too large"),
        "{:?}",
        lines[2]
    );
    assert_eq!(lines[3].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(lines[4].get("ok").and_then(Json::as_bool), Some(true));
    fs::remove_dir_all(&base).ok();
}
