//! Robustness tests: corrupted or hostile inputs must produce errors, not
//! panics, and the importer must tolerate anomalous event streams the way
//! the paper's tooling tolerates real-kernel oddities (unmatched unlocks,
//! unknown locks, accesses to untracked memory).
//!
//! Property tests run on the in-tree `lockdoc_platform::prop` harness.
//! A failing property prints its run seed; reproduce with
//! `LOCKDOC_PROP_SEED=<seed> cargo test -q <test-name>`.

use lockdoc_core::clock::clock_trace;
use lockdoc_core::rulespec::parse_rules;
use lockdoc_platform::prop::{self, ascii_garbage, vec_of};
use lockdoc_trace::codec::{read_trace, write_trace, CodecError};
use lockdoc_trace::db::import;
use lockdoc_trace::event::{AccessKind, AcquireMode, Event, LockFlavor, SourceLoc, Trace};
use lockdoc_trace::filter::FilterConfig;
use lockdoc_trace::ids::{AllocId, TaskId};

/// Decoding arbitrary bytes never panics; it either errors or yields a
/// valid trace.
#[test]
fn decoder_handles_garbage() {
    prop::check(
        "decoder_handles_garbage",
        |rng| vec_of(rng, 0..512, |r| r.next_u32() as u8),
        |bytes| {
            let _ = read_trace(&mut bytes.as_slice());
            Ok(())
        },
    );
}

/// Single-byte corruption of a valid container never panics. Shared by the
/// property runner and the pinned regression case below.
fn bitflip_property(pos_frac: f64, value: u8) -> Result<(), String> {
    let trace = clock_trace(5, 0);
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).expect("encode");
    let pos = ((buf.len() - 1) as f64 * pos_frac.clamp(0.0, 1.0)) as usize;
    buf[pos] = value;
    match read_trace(&mut buf.as_slice()) {
        Ok(decoded) => {
            // A lucky corruption may still decode; the result must at
            // least be structurally importable.
            let _ = import(&decoded, &FilterConfig::with_defaults(), 1);
        }
        Err(
            CodecError::Io(_)
            | CodecError::BadMagic
            | CodecError::BadTag(_)
            | CodecError::VarintOverflow
            | CodecError::BadUtf8
            | CodecError::BadCsv(_)
            | CodecError::NonMonotonic { .. }
            | CodecError::DanglingId(_)
            | CodecError::CountOverflow,
        ) => {}
    }
    Ok(())
}

#[test]
fn decoder_handles_bitflips() {
    prop::check(
        "decoder_handles_bitflips",
        |rng| {
            let pos_frac = rng.f64_unit();
            let value = rng.next_u32() as u8;
            (pos_frac, value)
        },
        |&(pos_frac, value)| bitflip_property(pos_frac, value),
    );
}

/// Pinned shrunk case from the former proptest regression file
/// (`tests/robustness.proptest-regressions`): corruption near offset 36%
/// with byte value 1 once tripped a decoder panic.
#[test]
fn regression_decoder_handles_bitflips_shrunk_case() {
    bitflip_property(0.3613634433190813, 1).unwrap();
}

/// Rule parsing never panics on arbitrary printable input.
#[test]
fn rule_parser_handles_garbage() {
    prop::check(
        "rule_parser_handles_garbage",
        |rng| ascii_garbage(rng, 0..300),
        |text| {
            let _ = parse_rules(text);
            Ok(())
        },
    );
}

/// Releases without acquires, accesses outside any allocation, and
/// double-frees in the *event stream* are counted, not fatal.
#[test]
fn importer_tolerates_anomalous_streams() {
    let mut tr = Trace::new();
    let file = tr.meta_mut().strings.intern("weird.c");
    let name = tr.meta_mut().strings.intern("l");
    tr.meta_mut().add_task("t");
    let loc = SourceLoc::new(file, 1);
    tr.push(1, Event::TaskSwitch { task: TaskId(0) });
    tr.push(
        2,
        Event::LockInit {
            addr: 0x10,
            name,
            flavor: LockFlavor::Spinlock,
            is_static: true,
        },
    );
    // Release before any acquire.
    tr.push(3, Event::LockRelease { addr: 0x10, loc });
    // Acquire of an unregistered lock address.
    tr.push(
        4,
        Event::LockAcquire {
            addr: 0xdead,
            mode: AcquireMode::Exclusive,
            loc,
        },
    );
    // Access to memory no allocation covers.
    tr.push(
        5,
        Event::MemAccess {
            kind: AccessKind::Write,
            addr: 0xbeef,
            size: 4,
            loc,
            atomic: false,
        },
    );
    // Free of an unknown allocation id is the only fatal condition we
    // accept from the tracer side, so don't emit it here.
    let db = import(&tr, &FilterConfig::with_defaults(), 1);
    assert_eq!(db.stats.unmatched_releases, 1);
    assert_eq!(db.stats.unknown_lock_acquires, 1);
    assert_eq!(db.stats.unresolved, 1);
    assert_eq!(db.accesses.len(), 0);
}

/// A lock release from a different flow than the acquirer is counted as
/// unmatched (per-flow lock state, paper's transaction model).
#[test]
fn cross_task_release_is_unmatched() {
    let mut tr = Trace::new();
    let file = tr.meta_mut().strings.intern("x.c");
    let name = tr.meta_mut().strings.intern("l");
    tr.meta_mut().add_task("t0");
    tr.meta_mut().add_task("t1");
    let loc = SourceLoc::new(file, 1);
    tr.push(
        1,
        Event::LockInit {
            addr: 0x10,
            name,
            flavor: LockFlavor::Mutex,
            is_static: true,
        },
    );
    tr.push(2, Event::TaskSwitch { task: TaskId(0) });
    tr.push(
        3,
        Event::LockAcquire {
            addr: 0x10,
            mode: AcquireMode::Exclusive,
            loc,
        },
    );
    tr.push(4, Event::TaskSwitch { task: TaskId(1) });
    tr.push(5, Event::LockRelease { addr: 0x10, loc });
    let db = import(&tr, &FilterConfig::with_defaults(), 1);
    assert_eq!(db.stats.unmatched_releases, 1);
}

/// An allocation that is never freed still resolves accesses (live at
/// trace end, like long-lived kernel objects).
#[test]
fn unfreed_allocations_remain_resolvable() {
    let mut tr = Trace::new();
    let file = tr.meta_mut().strings.intern("x.c");
    let dt = tr
        .meta_mut()
        .add_data_type(lockdoc_trace::event::DataTypeDef {
            name: "obj".into(),
            size: 8,
            members: vec![lockdoc_trace::event::MemberDef {
                name: "v".into(),
                offset: 0,
                size: 8,
                atomic: false,
                is_lock: false,
            }],
        });
    tr.meta_mut().add_task("t");
    tr.push(1, Event::TaskSwitch { task: TaskId(0) });
    tr.push(
        2,
        Event::Alloc {
            id: AllocId(7),
            addr: 0x1000,
            size: 8,
            data_type: dt,
            subclass: None,
        },
    );
    tr.push(
        3,
        Event::MemAccess {
            kind: AccessKind::Read,
            addr: 0x1000,
            size: 8,
            loc: SourceLoc::new(file, 9),
            atomic: false,
        },
    );
    let db = import(&tr, &FilterConfig::with_defaults(), 1);
    assert_eq!(db.accesses.len(), 1);
    let alloc = db.allocation(AllocId(7)).expect("alloc recorded");
    assert_eq!(alloc.free_ts, None);
}
