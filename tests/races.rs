//! End-to-end acceptance tests for the race detector and the
//! cross-pass consistency lint against the seeded racy-workload knob
//! (`ksim::rules::racy_fault_plan`, `lockdoc trace --racy`).

use ksim::config::SimConfig;
use ksim::rules;
use ksim::subsys::Machine;
use lockdoc_core::checker::check_rules_par;
use lockdoc_core::derive::{derive_par, DeriveConfig};
use lockdoc_core::lint::{lint, LintInputs, Severity};
use lockdoc_core::order::OrderGraph;
use lockdoc_core::race::{find_races_par, RaceReport};
use lockdoc_core::rulespec::parse_rules;
use lockdoc_core::violation::find_violations_par;
use lockdoc_core::LintReport;
use lockdoc_trace::db::{import, TraceDb};

const SEED: u64 = 0x7ace_5eed;
const OPS: u64 = 1_500;

fn racy_db(seed: u64, ops: u64) -> (TraceDb, usize) {
    let cfg = SimConfig::with_seed(seed).with_faults(rules::racy_fault_plan());
    let mut machine = Machine::boot(cfg);
    machine.run_mix(ops);
    let injections = machine.k.fault_log.count("mark_inode_dirty_lockless");
    let trace = machine.finish();
    let db = import(&trace, &rules::filter_config(), 1);
    (db, injections)
}

fn run_lint(db: &TraceDb, jobs: usize) -> (RaceReport, LintReport) {
    let mined = derive_par(db, &DeriveConfig::default(), jobs);
    let documented = parse_rules(rules::documented_rules()).expect("documented rules parse");
    let checked = check_rules_par(db, &documented, jobs);
    let violations = find_violations_par(db, &mined, 3, jobs);
    let races = find_races_par(db, jobs);
    let order = OrderGraph::build_par(db, jobs);
    let report = lint(
        db,
        &LintInputs {
            mined: &mined,
            checked: &checked,
            violations: &violations,
            races: &races,
            order: &order,
            statics: None,
        },
        jobs,
    );
    (races, report)
}

/// The acceptance gate: the seeded knob yields at least one CONFIRMED
/// finding whose witness pair pins the injected race site
/// (fs/fs-writeback.c:2152), cross-checked against the fault oracle.
#[test]
fn racy_knob_yields_confirmed_finding_at_injected_site() {
    let (db, injections) = racy_db(SEED, OPS);
    assert!(injections > 0, "knob must fire under this seed");
    let (races, report) = run_lint(&db, 1);

    let candidate = races
        .candidate("inode:ext4", "i_state")
        .or_else(|| races.candidate("inode", "i_state"));
    assert!(candidate.is_some(), "i_state must be a race candidate");

    let confirmed: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Confirmed)
        .collect();
    assert!(!confirmed.is_empty(), "at least one CONFIRMED finding");

    let at_site = confirmed.iter().any(|f| {
        f.member_name == "i_state"
            && f.witness.as_ref().is_some_and(|w| {
                [&w.first, &w.second].into_iter().any(|side| {
                    side.loc.line == 2152
                        && db.format_loc(side.loc).starts_with("fs/fs-writeback.c")
                })
            })
    });
    assert!(
        at_site,
        "a CONFIRMED witness pair must include the injected site fs/fs-writeback.c:2152"
    );
}

/// Without the knob the injected `i_state` site never executes, so no
/// finding may reference it: the CONFIRMED result is caused by the
/// injection, not by the workload shape.
#[test]
fn default_plan_has_no_finding_at_injected_site() {
    let cfg = SimConfig::with_seed(SEED);
    let mut machine = Machine::boot(cfg);
    machine.run_mix(OPS);
    assert_eq!(machine.k.fault_log.count("mark_inode_dirty_lockless"), 0);
    let trace = machine.finish();
    let db = import(&trace, &rules::filter_config(), 1);
    let (races, report) = run_lint(&db, 1);
    let touches_site = |w: &lockdoc_core::RacePair| {
        [&w.first, &w.second]
            .into_iter()
            .any(|side| side.loc.line == 2152)
    };
    assert!(!races
        .groups
        .iter()
        .flat_map(|g| &g.candidates)
        .any(|c| touches_site(&c.witness)));
    assert!(!report
        .findings
        .iter()
        .filter_map(|f| f.witness.as_ref())
        .any(touches_site));
}

/// Byte-identical text and JSON reports at jobs = 1 vs 4 on the racy
/// workload (the acceptance identity gate, exercised below the CLI).
#[test]
fn races_and_lint_are_jobs_invariant() {
    use lockdoc_platform::json::ToJson;
    let (db, _) = racy_db(SEED, OPS);
    let (races1, lint1) = run_lint(&db, 1);
    for jobs in [2, 4] {
        let (races_j, lint_j) = run_lint(&db, jobs);
        assert_eq!(races_j, races1, "race report, jobs = {jobs}");
        assert_eq!(lint_j, lint1, "lint report, jobs = {jobs}");
        assert_eq!(races_j.render(&db), races1.render(&db));
        assert_eq!(lint_j.render(&db), lint1.render(&db));
        assert_eq!(
            races_j.to_json().pretty(),
            races1.to_json().pretty(),
            "race JSON, jobs = {jobs}"
        );
        assert_eq!(
            lint_j.to_json().pretty(),
            lint1.to_json().pretty(),
            "lint JSON, jobs = {jobs}"
        );
    }
}
