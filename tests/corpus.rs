//! Corpus-scale incremental derivation, end to end through the CLI:
//!
//! * growing a corpus one trace at a time derives rules byte-identical
//!   to a from-scratch build of the same members, at `--jobs 1` and 4;
//! * incremental adds actually reuse untouched groups (the perf claim
//!   behind the matrix + rules caches);
//! * a flipped byte in a cached matrix artifact is a clean miss — the
//!   member is rebuilt and the rules stay correct;
//! * `serve --once` answers queries byte-identically to the batch
//!   subcommands on the merged corpus, before and after an ingest.

use lockdoc_cli::run;
use lockdoc_platform::json::{parse, Json};
use std::fs;
use std::path::{Path, PathBuf};

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records a trace with the given seed/mix into `path`.
fn record(path: &Path, seed: &str, mix: Option<&str>) {
    let mut argv = s(&[
        "trace",
        "--ops",
        "300",
        "--seed",
        seed,
        "--out",
        path.to_str().unwrap(),
    ]);
    if let Some(m) = mix {
        argv.extend(s(&["--mix", m]));
    }
    run(&argv).unwrap();
}

/// The rules section of a `corpus build` report (everything from the
/// first group header on), stripped of the summary lines whose cache
/// hit/miss counts legitimately differ between cold and warm runs.
fn rules_of(report: &str) -> &str {
    &report[report.find('[').expect("rules section")..]
}

/// Parses `groups: T total, R reused, D re-derived` out of a report.
fn group_counts(report: &str) -> (u64, u64, u64) {
    let line = report
        .lines()
        .find(|l| l.starts_with("groups: "))
        .expect("groups line");
    let nums: Vec<u64> = line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().unwrap())
        .collect();
    (nums[0], nums[1], nums[2])
}

#[test]
fn incremental_corpus_growth_matches_scratch_at_any_jobs() {
    let base = fresh_dir("lockdoc-suite-corpus-incremental");
    let seeds = ["11", "12", "13", "14"];
    let mixes = [None, None, Some("perms=1"), Some("pipes=1")];
    let traces: Vec<PathBuf> = seeds
        .iter()
        .zip(mixes)
        .enumerate()
        .map(|(i, (seed, mix))| {
            let p = base.join(format!("t{i}.ldoc"));
            record(&p, seed, mix);
            p
        })
        .collect();

    let inc_dir = base.join("incremental");
    let d = inc_dir.to_str().unwrap();
    let mut last_inc = String::new();
    for (k, trace) in traces.iter().enumerate() {
        // Grow the incremental corpus by one member, on 4 workers.
        let report = run(&s(&[
            "corpus",
            "add",
            trace.to_str().unwrap(),
            "--dir",
            d,
            "--jobs",
            "4",
        ]))
        .unwrap();
        // The add re-derives only the groups the new trace touches: the
        // narrow perms=1 / pipes=1 traces leave the standard mix's other
        // groups untouched, so those must be reused. (A full-mix add may
        // legitimately touch every group.)
        let (total, reused, rederived) = group_counts(&report);
        assert_eq!(total, reused + rederived, "k={k}: {report}");
        if mixes[k].is_some() {
            assert!(
                reused > 0,
                "k={k}: no group reuse on incremental add\n{report}"
            );
        }

        // A from-scratch corpus over the same members (fresh store, fresh
        // caches, serial) must produce byte-identical rules.
        let scratch_dir = base.join(format!("scratch{k}"));
        let sd = scratch_dir.to_str().unwrap();
        let mut argv = s(&["corpus", "add"]);
        argv.extend(traces[..=k].iter().map(|t| t.to_str().unwrap().to_owned()));
        argv.extend(s(&["--dir", sd, "--jobs", "1"]));
        let scratch = run(&argv).unwrap();
        assert_eq!(
            rules_of(&scratch),
            rules_of(&report),
            "k={k}: incremental(jobs 4) != scratch(jobs 1)"
        );
        last_inc = report;
    }

    // Dropping the last member restores the k=3 rules, again with reuse.
    let dropped = run(&s(&[
        "corpus", "drop", "t3.ldoc", "--dir", d, "--jobs", "1",
    ]))
    .unwrap();
    let scratch3 = run(&s(&[
        "corpus",
        "build",
        "--dir",
        base.join("scratch2").to_str().unwrap(),
        "--jobs",
        "4",
    ]))
    .unwrap();
    assert_eq!(rules_of(&dropped), rules_of(&scratch3));
    let (_, reused, _) = group_counts(&dropped);
    assert!(reused > 0, "drop re-derived everything:\n{dropped}");
    assert_ne!(rules_of(&dropped), rules_of(&last_inc));
    fs::remove_dir_all(&base).ok();
}

#[test]
fn stale_matrix_artifact_is_a_clean_miss() {
    let base = fresh_dir("lockdoc-suite-corpus-stale");
    let t1 = base.join("a.ldoc");
    let t2 = base.join("b.ldoc");
    record(&t1, "21", None);
    record(&t2, "22", Some("perms=1,pipes=1"));
    let corpus = base.join("corpus");
    let d = corpus.to_str().unwrap();
    let cold = run(&s(&[
        "corpus",
        "add",
        t1.to_str().unwrap(),
        t2.to_str().unwrap(),
        "--dir",
        d,
    ]))
    .unwrap();

    // Flip one payload byte in one cached matrix artifact.
    let cache = corpus.join(".lockdoc-cache");
    let mut ldmtx: Vec<PathBuf> = fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("ldmtx"))
        .collect();
    ldmtx.sort();
    assert_eq!(ldmtx.len(), 2, "one matrix artifact per member");
    let victim = &ldmtx[0];
    let mut bytes = fs::read(victim).unwrap();
    bytes[60] ^= 0x01; // past the 44-byte header: payload damage
    fs::write(victim, &bytes).unwrap();

    // The damaged artifact must be rebuilt (a miss), the intact one
    // served from cache (a hit) — and the rules must not change.
    let rebuilt = run(&s(&["corpus", "build", "--dir", d])).unwrap();
    assert!(
        rebuilt.contains("matrices: 1 cached, 1 rebuilt"),
        "{rebuilt}"
    );
    assert_eq!(rules_of(&cold), rules_of(&rebuilt));

    // A corrupt rules cache is equally harmless: rules still correct.
    fs::write(cache.join("corpus.rules.json"), b"{ not json").unwrap();
    let after = run(&s(&["corpus", "build", "--dir", d])).unwrap();
    assert_eq!(rules_of(&cold), rules_of(&after));
    fs::remove_dir_all(&base).ok();
}

#[test]
fn truncated_artifacts_are_clean_misses() {
    use lockdoc_platform::rng::Rng;

    let base = fresh_dir("lockdoc-suite-corpus-truncate");
    let t1 = base.join("a.ldoc");
    let t2 = base.join("b.ldoc");
    record(&t1, "51", None);
    record(&t2, "52", Some("pipes=1"));
    let corpus = base.join("corpus");
    let d = corpus.to_str().unwrap();
    let baseline = run(&s(&[
        "corpus",
        "add",
        t1.to_str().unwrap(),
        t2.to_str().unwrap(),
        "--dir",
        d,
    ]))
    .unwrap();
    let cache = corpus.join(".lockdoc-cache");

    // Deterministic coverage of the interesting offsets plus seeded
    // samples (LOCKDOC_PROP_SEED overrides the sampling seed).
    let seed: u64 = std::env::var("LOCKDOC_PROP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x7451c0);
    let offsets_of = |len: usize, rng: &mut Rng| -> Vec<usize> {
        let mut offs = vec![0, 1, len / 2, len.saturating_sub(1)];
        for _ in 0..3 {
            offs.push(rng.gen_range(0..len));
        }
        offs.retain(|&o| o < len);
        offs
    };
    let mut rng = Rng::seed_from_u64(seed);

    // A matrix artifact truncated at any offset is a miss: the member is
    // rebuilt and the rules do not change (and never panic).
    let ldmtx: Vec<PathBuf> = fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("ldmtx"))
        .collect();
    let victim = ldmtx.first().expect("matrix artifact");
    let full = fs::read(victim).unwrap();
    for off in offsets_of(full.len(), &mut rng) {
        fs::write(victim, &full[..off]).unwrap();
        let rebuilt = run(&s(&["corpus", "build", "--dir", d])).unwrap();
        assert!(
            rebuilt.contains("matrices: 1 cached, 1 rebuilt"),
            "ldmtx truncated at {off} was not a clean miss:\n{rebuilt}"
        );
        assert_eq!(
            rules_of(&baseline),
            rules_of(&rebuilt),
            "ldmtx truncated at {off} changed the rules"
        );
    }

    // Same for the corpus rules cache: every group merely re-derives.
    let rules_cache = cache.join("corpus.rules.json");
    let full = fs::read(&rules_cache).unwrap();
    for off in offsets_of(full.len(), &mut rng) {
        fs::write(&rules_cache, &full[..off]).unwrap();
        let rebuilt = run(&s(&["corpus", "build", "--dir", d])).unwrap();
        assert_eq!(
            rules_of(&baseline),
            rules_of(&rebuilt),
            "rules cache truncated at {off} changed the rules"
        );
    }

    // And for the single-trace columnar archive (LDARCH1): a truncated
    // archive re-imports from the container, byte-identically.
    let adir = base.join("archive-cache");
    let races_args = s(&[
        "races",
        "--trace",
        t1.to_str().unwrap(),
        "--cache-dir",
        adir.to_str().unwrap(),
        "--json",
    ]);
    let fresh = run(&races_args).unwrap();
    let archive: PathBuf = fs::read_dir(&adir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().and_then(|x| x.to_str()) == Some("ldarc"))
        .expect("archive written");
    let full = fs::read(&archive).unwrap();
    for off in offsets_of(full.len(), &mut rng) {
        fs::write(&archive, &full[..off]).unwrap();
        let again = run(&races_args).unwrap();
        assert_eq!(
            fresh, again,
            "archive truncated at {off} changed the races output"
        );
    }
    fs::remove_dir_all(&base).ok();
}

#[test]
fn serve_once_matches_batch_and_survives_ingest() {
    let base = fresh_dir("lockdoc-suite-corpus-serve");
    let t1 = base.join("a.ldoc");
    let t2 = base.join("b.ldoc");
    record(&t1, "31", None);
    record(&t2, "32", Some("pipes=1"));
    let corpus = base.join("corpus");
    let d = corpus.to_str().unwrap();
    run(&s(&["corpus", "add", t1.to_str().unwrap(), "--dir", d])).unwrap();

    // Queries before and after an in-session ingest: the snapshot swap
    // must be observable (derive output changes to the 2-member corpus).
    let queries = base.join("q.jsonl");
    fs::write(
        &queries,
        format!(
            "{{\"cmd\": \"derive\"}}\n{{\"cmd\": \"add\", \"path\": \"{}\"}}\n\
             {{\"cmd\": \"derive\"}}\n{{\"cmd\": \"order\"}}\n{{\"cmd\": \"shutdown\"}}\n",
            t2.to_str().unwrap()
        ),
    )
    .unwrap();
    let resp = run(&s(&[
        "serve",
        "--dir",
        d,
        "--once",
        "--input",
        queries.to_str().unwrap(),
        "--jobs",
        "4",
    ]))
    .unwrap();
    let lines: Vec<Json> = resp.lines().map(|l| parse(l).expect("json")).collect();
    assert_eq!(lines.len(), 5);
    let output = |i: usize| lines[i].get("output").and_then(Json::as_str).unwrap();
    for (i, line) in lines.iter().enumerate() {
        assert_eq!(
            line.get("ok").and_then(Json::as_bool),
            Some(true),
            "line {i}"
        );
    }
    assert_eq!(output(1), "added b.ldoc");

    // Both derive answers equal batch derivations of the corresponding
    // merged corpora; the post-ingest one covers both members.
    let merged2 = base.join("merged2.ldoc");
    run(&s(&[
        "corpus",
        "export",
        "--dir",
        d,
        "--out",
        merged2.to_str().unwrap(),
    ]))
    .unwrap();
    let batch2 = run(&s(&[
        "derive",
        "--trace",
        merged2.to_str().unwrap(),
        "--jobs",
        "1",
    ]))
    .unwrap();
    assert_eq!(output(2), batch2, "post-ingest serve derive != batch");
    assert_ne!(output(0), output(2), "ingest did not swap the snapshot");
    let batch_order = run(&s(&["order", "--trace", merged2.to_str().unwrap()])).unwrap();
    assert_eq!(output(3), batch_order, "serve order != batch order");

    // And the serve answers are jobs-invariant: replay the same session
    // minus the ingest on one worker against a fresh cache.
    run(&s(&["corpus", "drop", "b.ldoc", "--dir", d])).unwrap();
    let cache1 = base.join("cache-serial");
    fs::write(&queries, "{\"cmd\": \"derive\"}\n{\"cmd\": \"shutdown\"}\n").unwrap();
    let serial = run(&s(&[
        "serve",
        "--dir",
        d,
        "--cache-dir",
        cache1.to_str().unwrap(),
        "--once",
        "--input",
        queries.to_str().unwrap(),
        "--jobs",
        "1",
    ]))
    .unwrap();
    let first: Json = parse(serial.lines().next().unwrap()).unwrap();
    assert_eq!(
        first.get("output").and_then(Json::as_str).unwrap(),
        output(0),
        "serve derive differs across --jobs / cache temperature"
    );
    fs::remove_dir_all(&base).ok();
}
