//! Differential corruption-oracle suite: `lockdoc_trace::corrupt` injects
//! labelled corruption into generated traces and the resilient pipeline
//! must observe *exactly* what the oracle says — strict mode refuses with
//! the precise class and event index, lenient mode's quarantine report
//! matches the injected oracle entry-for-entry, salvage recovers the exact
//! intact prefix of a truncated container, and a clean trace pushed
//! through the resilient path is byte-identical to the fast path at any
//! worker count.
//!
//! Property tests run on the in-tree `lockdoc_platform::prop` harness.
//! A failing property prints its run seed; reproduce with
//! `LOCKDOC_PROP_SEED=<seed> cargo test -q <test-name>`. CI soak runs
//! raise `LOCKDOC_PROP_CASES` (see `scripts/verify.sh`).

use lockdoc_platform::prop;
use lockdoc_platform::rng::Rng;
use lockdoc_platform::{prop_assert, prop_assert_eq};
use lockdoc_trace::codec::{read_trace, read_trace_salvage, write_trace};
use lockdoc_trace::corrupt::{inject, CorruptionClass, Oracle};
use lockdoc_trace::db::{import, import_resilient, import_strict, ImportError, ResilientConfig};
use lockdoc_trace::event::{
    AccessKind, AcquireMode, DataTypeDef, Event, LockFlavor, MemberDef, SourceLoc, Trace,
};
use lockdoc_trace::filter::FilterConfig;
use lockdoc_trace::ids::AllocId;

fn cfg() -> FilterConfig {
    FilterConfig::with_defaults()
}

/// Generates a clean trace that is *guaranteed* to contain at least one
/// injection site for every event-level corruption class: each object is
/// allocated at a fresh disjoint address (droppable alloc / effective
/// free), accessed under a registered spinlock (timestamp-regression
/// sites), and released with a held-count of one (emptying release); the
/// gaps between objects are quiet boundaries for unbalanced-lock
/// insertion.
fn gen_trace(seed: u64) -> Trace {
    let mut rng = Rng::seed_from_u64(seed);
    let mut tr = Trace::new();
    let file = tr.meta_mut().strings.intern("gen.c");
    let lname = tr.meta_mut().strings.intern("obj_lock");
    let dt = tr.meta_mut().add_data_type(DataTypeDef {
        name: "obj".into(),
        size: 64,
        members: vec![MemberDef {
            name: "field".into(),
            offset: 0,
            size: 8,
            atomic: false,
            is_lock: false,
        }],
    });
    let task = tr.meta_mut().add_task("gen/0");
    let mut ts = 1u64;
    let mut push = |tr: &mut Trace, ev: Event| {
        let t = ts;
        ts += 1;
        tr.push(t, ev);
    };
    push(&mut tr, Event::TaskSwitch { task });
    // The lock lives far below every allocation range, so no allocation
    // is ever "tainted" by a LockInit inside it.
    push(
        &mut tr,
        Event::LockInit {
            addr: 0x10,
            name: lname,
            flavor: LockFlavor::Spinlock,
            is_static: true,
        },
    );
    let objects = rng.gen_range(1u64..4);
    for i in 0..objects {
        let addr = 0x1000 + i * 0x100;
        push(
            &mut tr,
            Event::Alloc {
                id: AllocId(i + 1),
                addr,
                size: 64,
                data_type: dt,
                subclass: None,
            },
        );
        push(
            &mut tr,
            Event::LockAcquire {
                addr: 0x10,
                mode: AcquireMode::Exclusive,
                loc: SourceLoc::new(file, 10 + i as u32),
            },
        );
        for a in 0..rng.gen_range(1u64..4) {
            push(
                &mut tr,
                Event::MemAccess {
                    kind: if rng.gen_bool(0.5) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    addr,
                    size: 8,
                    loc: SourceLoc::new(file, 100 + a as u32),
                    atomic: false,
                },
            );
        }
        push(
            &mut tr,
            Event::LockRelease {
                addr: 0x10,
                loc: SourceLoc::new(file, 20 + i as u32),
            },
        );
        push(&mut tr, Event::Free { id: AllocId(i + 1) });
    }
    tr
}

/// Lenient import with a wide-open budget, as quarantine-report oracle
/// checks require (one bad event in a tiny trace exceeds any real budget).
fn lenient(trace: &Trace, jobs: usize) -> (lockdoc_trace::TraceDb, Vec<(String, u64)>) {
    let (db, report) =
        import_resilient(trace, &cfg(), jobs, &ResilientConfig::lenient(1.0)).expect("lenient");
    let entries = report
        .quarantined
        .iter()
        .map(|q| (q.class.name().to_owned(), q.event_index))
        .collect();
    (db, entries)
}

/// The tentpole property: for every event-level corruption class, strict
/// mode refuses with the oracle's first entry and lenient mode's
/// quarantine report equals the oracle exactly — at any worker count.
#[test]
fn event_level_oracles_are_exact() {
    prop::check(
        "event_level_oracles_are_exact",
        |rng| (rng.next_u64(), rng.gen_range(0u8..6)),
        |&(seed, class_idx)| {
            let class = CorruptionClass::EVENT_LEVEL[class_idx as usize];
            let base = gen_trace(seed);
            let inj = inject(&base, class, seed ^ 0x5eed)
                .ok_or_else(|| format!("no injection site for {class}"))?;
            let corrupted = inj.trace.as_ref().expect("event-level trace");
            let Oracle::Quarantine(expected) = &inj.oracle else {
                return Err(format!("{class}: unexpected oracle {:?}", inj.oracle));
            };
            let expected: Vec<(String, u64)> = expected
                .iter()
                .map(|&(c, i)| (c.name().to_owned(), i))
                .collect();

            // Strict: typed refusal naming the first injected defect.
            let err = import_strict(corrupted, &cfg(), 1)
                .err()
                .ok_or_else(|| format!("{class}: strict import accepted corruption"))?;
            match &err {
                ImportError::Corrupt {
                    class: got_class,
                    event_index,
                    ..
                } => {
                    prop_assert_eq!(
                        (got_class.name().to_owned(), *event_index),
                        expected[0].clone(),
                        "strict diagnosis != oracle for {}",
                        class
                    );
                }
                other => return Err(format!("{class}: unexpected error {other}")),
            }

            // Lenient: the quarantine report IS the oracle, and both the
            // report and the imported database are jobs-invariant.
            let (db1, got1) = lenient(corrupted, 1);
            prop_assert_eq!(&got1, &expected, "lenient report != oracle for {}", class);
            let (db4, got4) = lenient(corrupted, 4);
            prop_assert_eq!(&got1, &got4, "lenient report differs across jobs");
            prop_assert!(db1 == db4, "lenient database differs across jobs");
            Ok(())
        },
    );
}

/// A clean trace through the resilient path is indistinguishable from the
/// fast path — same database at jobs 1 and 4, clean report, and the
/// salvage reader reproduces the container byte-for-byte.
#[test]
fn clean_traces_pass_through_unchanged() {
    prop::check(
        "clean_traces_pass_through_unchanged",
        |rng| rng.next_u64(),
        |&seed| {
            let base = gen_trace(seed);
            for jobs in [1usize, 4] {
                let fast = import(&base, &cfg(), jobs);
                let (db, report) =
                    import_resilient(&base, &cfg(), jobs, &ResilientConfig::default())
                        .map_err(|e| e.to_string())?;
                prop_assert!(report.is_clean(), "clean trace quarantined: {:?}", report);
                prop_assert!(db == fast, "resilient db != fast db at jobs {}", jobs);
                let strict = import_strict(&base, &cfg(), jobs).map_err(|e| e.to_string())?;
                prop_assert!(strict == fast, "strict db != fast db at jobs {}", jobs);
            }
            let mut bytes = Vec::new();
            write_trace(&base, &mut bytes).map_err(|e| e.to_string())?;
            let (salvaged, sreport) = read_trace_salvage(&bytes).map_err(|e| e.to_string())?;
            prop_assert!(
                sreport.is_clean(),
                "clean container diagnosed: {:?}",
                sreport
            );
            let mut reencoded = Vec::new();
            write_trace(&salvaged, &mut reencoded).map_err(|e| e.to_string())?;
            prop_assert!(reencoded == bytes, "salvage round-trip not byte-identical");
            Ok(())
        },
    );
}

/// Mid-record truncation: the strict reader refuses, salvage recovers the
/// exact intact prefix and diagnoses the first failure at the cut record's
/// byte offset.
#[test]
fn truncation_recovers_exact_prefix() {
    prop::check(
        "truncation_recovers_exact_prefix",
        |rng| rng.next_u64(),
        |&seed| {
            let base = gen_trace(seed);
            let inj = inject(&base, CorruptionClass::TruncateTail, seed ^ 0xc07)
                .ok_or("no truncation site")?;
            let bytes = inj.bytes.as_ref().expect("byte-level artifact");
            let Oracle::Truncated {
                intact_events,
                cut_record_offset,
            } = inj.oracle
            else {
                return Err(format!("unexpected oracle {:?}", inj.oracle));
            };
            prop_assert!(
                read_trace(&mut bytes.as_slice()).is_err(),
                "strict read accepted a truncated container"
            );
            let (salvaged, report) = read_trace_salvage(bytes).map_err(|e| e.to_string())?;
            prop_assert!(report.failures >= 1, "no failure diagnosed");
            prop_assert!(
                salvaged.events.len() >= intact_events,
                "salvage lost intact records"
            );
            prop_assert!(
                salvaged.events[..intact_events] == base.events[..intact_events],
                "recovered prefix differs from the original"
            );
            let first = report.diags.first().ok_or("no diagnostics")?;
            prop_assert_eq!(first.event_index, intact_events as u64);
            prop_assert_eq!(first.offset, cut_record_offset as u64);
            Ok(())
        },
    );
}

/// Metadata bit flips never panic, hang, or over-allocate: both readers
/// return a typed result.
#[test]
fn metadata_bitflips_never_panic() {
    prop::check(
        "metadata_bitflips_never_panic",
        |rng| rng.next_u64(),
        |&seed| {
            let base = gen_trace(seed);
            let inj = inject(&base, CorruptionClass::LengthPrefixBitFlip, seed ^ 0xb17)
                .ok_or("no bitflip site")?;
            let bytes = inj.bytes.as_ref().expect("byte-level artifact");
            let strict = read_trace(&mut bytes.as_slice());
            let salvage = read_trace_salvage(bytes);
            // A lucky flip may still decode; whatever decodes must import
            // without panicking.
            if let Ok(trace) = &strict {
                let _ = import_resilient(trace, &cfg(), 1, &ResilientConfig::lenient(1.0));
            }
            if let Ok((trace, _)) = &salvage {
                let _ = import_resilient(trace, &cfg(), 1, &ResilientConfig::lenient(1.0));
            }
            Ok(())
        },
    );
}

/// The error budget is a hard gate: a corrupted trace passes with a wide
/// budget and is refused with a zero budget, with exact accounting.
#[test]
fn budget_gates_are_exact() {
    prop::check(
        "budget_gates_are_exact",
        |rng| rng.next_u64(),
        |&seed| {
            let base = gen_trace(seed);
            let inj = inject(&base, CorruptionClass::DoubleFree, seed ^ 0xbad9e7)
                .ok_or("no double-free site")?;
            let corrupted = inj.trace.as_ref().expect("event-level trace");
            let err = import_resilient(corrupted, &cfg(), 1, &ResilientConfig::lenient(0.0))
                .err()
                .ok_or("zero budget accepted corruption")?;
            match err {
                ImportError::BudgetExceeded {
                    quarantined,
                    events,
                    ..
                } => {
                    prop_assert_eq!(quarantined, 1);
                    prop_assert_eq!(events, corrupted.events.len() as u64);
                }
                other => return Err(format!("unexpected error {other}")),
            }
            let (_, report) =
                import_resilient(corrupted, &cfg(), 1, &ResilientConfig::lenient(1.0))
                    .map_err(|e| e.to_string())?;
            prop_assert_eq!(report.quarantined.len(), 1);
            Ok(())
        },
    );
}

/// Quarantine reports survive the JSON interchange format losslessly.
#[test]
fn quarantine_reports_round_trip_through_json() {
    prop::check(
        "quarantine_reports_round_trip_through_json",
        |rng| (rng.next_u64(), rng.gen_range(0u8..6)),
        |&(seed, class_idx)| {
            let class = CorruptionClass::EVENT_LEVEL[class_idx as usize];
            let base = gen_trace(seed);
            let inj = inject(&base, class, seed ^ 0x150)
                .ok_or_else(|| format!("no injection site for {class}"))?;
            let corrupted = inj.trace.as_ref().expect("event-level trace");
            let (_, report) =
                import_resilient(corrupted, &cfg(), 1, &ResilientConfig::lenient(1.0))
                    .map_err(|e| e.to_string())?;
            let text = lockdoc_platform::json::to_string_pretty(&report);
            let back: lockdoc_trace::db::ImportReport =
                lockdoc_platform::json::from_str(&text).map_err(|e| e.to_string())?;
            prop_assert_eq!(back, report, "ImportReport JSON round-trip");
            Ok(())
        },
    );
}

/// Pinned end-to-end case: every class injected into one canonical trace,
/// exercised through both readers and both policies. This is the
/// deterministic fast check the property suite generalizes.
#[test]
fn every_class_end_to_end_on_canonical_trace() {
    let base = gen_trace(0x10cd0c);
    for class in CorruptionClass::ALL {
        let inj = inject(&base, class, 7).unwrap_or_else(|| panic!("no site for {class}"));
        match &inj.oracle {
            Oracle::Quarantine(expected) => {
                let corrupted = inj.trace.as_ref().expect("trace");
                assert!(import_strict(corrupted, &cfg(), 1).is_err(), "{class}");
                let (_, got) = lenient(corrupted, 1);
                let want: Vec<(String, u64)> = expected
                    .iter()
                    .map(|&(c, i)| (c.name().to_owned(), i))
                    .collect();
                assert_eq!(got, want, "{class}");
            }
            Oracle::Truncated { intact_events, .. } => {
                let bytes = inj.bytes.as_ref().expect("bytes");
                assert!(read_trace(&mut bytes.as_slice()).is_err(), "{class}");
                let (salvaged, report) = read_trace_salvage(bytes).expect("salvage");
                assert!(report.failures >= 1, "{class}");
                assert_eq!(
                    &salvaged.events[..*intact_events],
                    &base.events[..*intact_events],
                    "{class}"
                );
            }
            Oracle::MetaDamage { .. } => {
                let bytes = inj.bytes.as_ref().expect("bytes");
                let _ = read_trace(&mut bytes.as_slice());
                let _ = read_trace_salvage(bytes);
            }
        }
    }
}
