//! Golden-file end-to-end pipeline test: simulate → encode → import →
//! derive → document, with a fixed seed, and compare the generated
//! documentation byte-for-byte against a checked-in golden file.
//!
//! When the pipeline's output legitimately changes, regenerate with
//!
//! ```sh
//! LOCKDOC_GOLDEN_REGEN=1 cargo test -q --test golden
//! ```
//!
//! and review the diff of `tests/golden/pipeline_doc.txt` like any other
//! code change.

use ksim::config::SimConfig;
use ksim::parallel::run_mix_sharded;
use ksim::rules;
use ksim::subsys::Machine;
use lockdoc_core::checker::check_rules_par;
use lockdoc_core::derive::{derive_par, DeriveConfig};
use lockdoc_core::docgen::{generate_doc, generate_rulespec};
use lockdoc_core::lint::{lint, LintInputs};
use lockdoc_core::order::OrderGraph;
use lockdoc_core::race::find_races_par;
use lockdoc_core::rulespec::parse_rules;
use lockdoc_core::violation::find_violations_par;
use lockdoc_trace::codec::write_trace;
use lockdoc_trace::db::import;
use std::fs;
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 0x601d_5eed;
const GOLDEN_OPS: u64 = 2_000;

/// Runs the full pipeline once — sharded ksim generation, trace encode,
/// import, derivation, documentation — with every phase on `jobs`
/// workers: returns the encoded trace bytes and the generated
/// documentation artifact. `shards` is part of the trace content (see
/// `ksim::parallel`); `jobs` must never change a byte of either output.
fn run_pipeline_sharded(shards: u64, jobs: usize) -> (Vec<u8>, String) {
    let cfg = SimConfig::with_seed(GOLDEN_SEED).with_faults(rules::default_fault_plan());
    let run = run_mix_sharded(&cfg, None, GOLDEN_OPS, shards, jobs).expect("generation succeeds");
    let trace = run.trace;

    let mut encoded = Vec::new();
    write_trace(&trace, &mut encoded).expect("encode");

    let db = import(&trace, &rules::filter_config(), jobs);
    let mined = derive_par(&db, &DeriveConfig::default(), jobs);

    let mut doc = String::new();
    doc.push_str(&format!(
        "# golden pipeline artifact (seed 0x{GOLDEN_SEED:x}, {GOLDEN_OPS} ops)\n\n"
    ));
    doc.push_str("## rulespec\n\n");
    for group in &mined.groups {
        doc.push_str(&generate_rulespec(group));
    }
    doc.push_str("\n## documentation\n\n");
    for group in &mined.groups {
        doc.push_str(&generate_doc(group));
        doc.push('\n');
    }

    // Race detection + cross-pass consistency lint, sharded like every
    // other phase; the golden file pins both text reports too.
    let documented = parse_rules(rules::documented_rules()).expect("documented rules parse");
    let checked = check_rules_par(&db, &documented, jobs);
    let violations = find_violations_par(&db, &mined, 3, jobs);
    let races = find_races_par(&db, jobs);
    let order = OrderGraph::build_par(&db, jobs);
    let report = lint(
        &db,
        &LintInputs {
            mined: &mined,
            checked: &checked,
            violations: &violations,
            races: &races,
            order: &order,
            statics: None,
        },
        jobs,
    );
    doc.push_str("## races\n\n");
    doc.push_str(&races.render(&db));
    doc.push_str("\n## lint\n\n");
    doc.push_str(&report.render(&db));

    // A small feedback-fuzzing campaign rides on the same golden file:
    // its report is a pure function of the config below, and passing the
    // pipeline's `jobs` through pins the jobs-invariance of the campaign
    // loop alongside every other phase.
    let fuzz_cfg = ksim::fuzz::FuzzConfig {
        seed: GOLDEN_SEED,
        budget: 4,
        ops: 240,
        shards: 1,
        generation: 2,
    };
    let fuzz = ksim::fuzz::run_campaign(&fuzz_cfg, jobs).expect("fuzz campaign runs");
    doc.push_str("\n## fuzz\n\n");
    doc.push_str(&fuzz.render());
    (encoded, doc)
}

fn run_pipeline_jobs(jobs: usize) -> (Vec<u8>, String) {
    run_pipeline_sharded(1, jobs)
}

fn run_pipeline() -> (Vec<u8>, String) {
    run_pipeline_jobs(1)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/pipeline_doc.txt")
}

/// The end-to-end artifact matches the checked-in golden file exactly.
#[test]
fn golden_pipeline_doc_matches() {
    let (_, doc) = run_pipeline();
    let path = golden_path();
    if std::env::var_os("LOCKDOC_GOLDEN_REGEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("mkdir golden");
        fs::write(&path, &doc).expect("write golden");
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nregenerate with LOCKDOC_GOLDEN_REGEN=1 cargo test -q --test golden",
            path.display()
        )
    });
    assert_eq!(
        doc, want,
        "pipeline output drifted from tests/golden/pipeline_doc.txt; if the \
         change is intentional, regenerate with LOCKDOC_GOLDEN_REGEN=1 and \
         review the diff"
    );
}

/// Determinism contract (paper Sec. 4: reproducible traces): identical
/// seeds yield byte-identical encoded traces AND byte-identical derived
/// documentation across independent runs in the same process.
#[test]
fn identical_seeds_yield_byte_identical_pipeline() {
    let (trace_a, doc_a) = run_pipeline();
    let (trace_b, doc_b) = run_pipeline();
    assert_eq!(trace_a, trace_b, "encoded traces differ between runs");
    assert_eq!(doc_a, doc_b, "derived documentation differs between runs");
}

/// Determinism contract of the parallel pipeline: the encoded trace and
/// the generated documentation are byte-identical whether generation,
/// import, and derivation run serially or across a thread pool. The
/// golden file therefore pins the output of every worker count at once.
#[test]
fn parallel_derivation_is_byte_identical_to_serial() {
    let (trace_serial, doc_serial) = run_pipeline_jobs(1);
    let (trace_par, doc_par) = run_pipeline_jobs(4);
    assert_eq!(
        trace_serial, trace_par,
        "trace generated at jobs=4 drifted from the serial output"
    );
    assert_eq!(
        doc_serial, doc_par,
        "documentation derived at jobs=4 drifted from the serial output"
    );
}

/// Same contract with multi-shard generation in the loop: a 4-shard
/// workload run through the full pipeline at jobs=1 and jobs=4 produces
/// byte-identical traces and final documentation — and genuinely
/// different content than the unsharded run (sharding is not a no-op).
#[test]
fn sharded_pipeline_is_jobs_invariant_end_to_end() {
    let (trace_serial, doc_serial) = run_pipeline_sharded(4, 1);
    let (trace_par, doc_par) = run_pipeline_sharded(4, 4);
    assert_eq!(
        trace_serial, trace_par,
        "4-shard trace differs between jobs=1 and jobs=4"
    );
    assert_eq!(
        doc_serial, doc_par,
        "4-shard documentation differs between jobs=1 and jobs=4"
    );
    let (unsharded, _) = run_pipeline_jobs(1);
    assert_ne!(
        trace_serial, unsharded,
        "shard count must be part of the trace content"
    );
}

/// A different seed produces a different trace (the determinism above is
/// not vacuous).
#[test]
fn different_seeds_differ() {
    let (trace_a, _) = run_pipeline();
    let cfg = SimConfig::with_seed(GOLDEN_SEED ^ 1).with_faults(rules::default_fault_plan());
    let mut machine = Machine::boot(cfg);
    machine.run_mix(GOLDEN_OPS);
    let mut other = Vec::new();
    write_trace(&machine.finish(), &mut other).expect("encode");
    assert_ne!(trace_a, other);
}
