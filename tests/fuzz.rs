//! End-to-end gates for the coverage-guided workload fuzzer
//! (`ksim::fuzz`, DESIGN.md §5.5):
//!
//! * campaigns are a pure function of their [`FuzzConfig`] — rerunning
//!   the same (seed, budget) reproduces the report exactly, and `jobs`
//!   never changes a byte (property over random campaign seeds),
//! * the non-vacuity gate: at the pinned reference configuration the
//!   campaign strictly improves at least one signal dimension over the
//!   paper's standard mix, so the feedback loop demonstrably steers,
//! * the corpus is minimal: every non-baseline entry names a concrete
//!   contribution, and baseline re-entries are impossible.

use ksim::fuzz::{run_campaign, FuzzConfig};
use lockdoc_platform::prop::{self, Config};
use lockdoc_platform::prop_assert_eq;

/// Small-but-real campaign dimensions for the property runs: enough ops
/// for the analysis passes to see structure, small enough to keep each
/// case under a second.
fn prop_config(seed: u64) -> FuzzConfig {
    FuzzConfig {
        seed,
        budget: 3,
        ops: 160,
        shards: 1,
        generation: 2,
    }
}

/// For any campaign seed, the report is (seed, budget)-reproducible and
/// byte-identical at `jobs` 1 vs 4.
#[test]
fn fuzz_campaign_is_reproducible_and_jobs_invariant() {
    let cfg = Config {
        cases: 3,
        ..Config::from_env()
    };
    prop::check_with(
        &cfg,
        "fuzz_campaign_is_reproducible_and_jobs_invariant",
        |rng| rng.next_u64(),
        |&seed| {
            let fcfg = prop_config(seed);
            let serial = run_campaign(&fcfg, 1).map_err(|e| e.to_string())?;
            let again = run_campaign(&fcfg, 1).map_err(|e| e.to_string())?;
            prop_assert_eq!(&serial, &again, "rerun differs at seed 0x{:x}", seed);
            let parallel = run_campaign(&fcfg, 4).map_err(|e| e.to_string())?;
            prop_assert_eq!(
                &serial,
                &parallel,
                "report differs between jobs 1 and 4 at seed 0x{:x}",
                seed
            );
            Ok(())
        },
    );
}

/// Non-vacuity: at the reference configuration the campaign must beat
/// the standard mix on at least one dimension — otherwise the feedback
/// loop is decorative.
#[test]
fn reference_campaign_strictly_improves_on_the_standard_mix() {
    let cfg = FuzzConfig {
        budget: 6,
        ops: 240,
        generation: 3,
        ..FuzzConfig::default()
    };
    let report = run_campaign(&cfg, 4).expect("campaign runs");
    assert!(
        report.improves_baseline(),
        "campaign failed to improve any dimension: {}",
        report.render()
    );
    // Improvements must be reflected in the summaries, not just claimed.
    for dim in &report.improved {
        match dim.as_str() {
            "covered_fns" => {
                assert!(report.frontier.covered_fns > report.baseline.covered_fns)
            }
            "lock_combos" => {
                assert!(report.frontier.lock_combos > report.baseline.lock_combos)
            }
            "zero_observation_members" => {
                assert!(report.frontier.zero_obs_members < report.baseline.zero_obs_members)
            }
            "race_candidates" => {
                assert!(report.frontier.race_candidates > report.baseline.race_candidates)
            }
            "pairless" => assert!(report.frontier.pairless < report.baseline.pairless),
            other => panic!("unknown improved dimension `{other}`"),
        }
    }
}

/// Corpus minimality: entry 0 is the baseline, and every later entry
/// records the non-empty gain that earned its slot.
#[test]
fn corpus_entries_all_carry_their_contribution() {
    let report = run_campaign(&prop_config(0xc0_4b05), 2).expect("campaign runs");
    assert_eq!(report.corpus[0].gain, "baseline");
    assert_eq!(report.corpus[0].round, 0);
    for entry in &report.corpus[1..] {
        assert!(entry.round >= 1);
        assert!(
            !entry.gain.is_empty(),
            "corpus entry without a recorded gain: {entry:?}"
        );
    }
    // The trajectory ends exactly at the budget.
    assert_eq!(report.trajectory.last().unwrap().evaluated, report.budget);
}
