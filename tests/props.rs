//! Property-based tests of the core invariants, on the in-tree
//! `lockdoc_platform::prop` harness:
//!
//! * codec round-trips arbitrary event streams,
//! * transaction reconstruction matches a reference interpreter,
//! * hypothesis support is anti-monotone under sequence extension,
//! * the selected winner always satisfies the selection contract,
//! * rule-notation printing and parsing are inverses,
//! * the write-over-read fold is idempotent and consistent.
//!
//! A failing property prints its run seed; reproduce with
//! `LOCKDOC_PROP_SEED=<seed> cargo test -q <test-name>`.

use lockdoc_core::derive::{derive_par, DeriveConfig};
use lockdoc_core::hypothesis::{complies, enumerate, Observation};
use lockdoc_core::lockset::LockDescriptor;
use lockdoc_core::matrix::AccessMatrix;
use lockdoc_core::order::OrderGraph;
use lockdoc_core::rulespec::{parse_rule, parse_rules, RuleSpec};
use lockdoc_core::select::{select, SelectionConfig};
use lockdoc_platform::prop::{self, vec_of, Shrink};
use lockdoc_platform::rng::Rng;
use lockdoc_platform::{prop_assert, prop_assert_eq};
use lockdoc_trace::codec::{read_trace, write_trace, TraceReader};
use lockdoc_trace::db::{filter_fingerprint, import, import_stream, read_archive, write_archive};
use lockdoc_trace::event::{
    AccessKind, AcquireMode, DataTypeDef, Event, LockFlavor, MemberDef, SourceLoc, Trace,
};
use lockdoc_trace::filter::FilterConfig;
use lockdoc_trace::ids::{AllocId, TaskId};

/// A tiny abstract program: operations on two locks and one object with
/// two members, from which both a trace and a reference lock-state
/// interpretation are produced.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Lock(u8),
    Unlock(u8),
    Access(u8, bool), // member, is_write
}

fn op_gen(rng: &mut Rng) -> Op {
    match rng.gen_range(0u8..3) {
        0 => Op::Lock(rng.gen_range(0u8..2)),
        1 => Op::Unlock(rng.gen_range(0u8..2)),
        _ => Op::Access(rng.gen_range(0u8..2), rng.gen_bool(0.5)),
    }
}

impl Shrink for Op {
    fn shrink(&self) -> Vec<Self> {
        match *self {
            Op::Lock(0) => vec![],
            Op::Lock(_) => vec![Op::Lock(0)],
            Op::Unlock(l) => vec![Op::Lock(l)],
            Op::Access(m, w) => {
                let mut out = vec![Op::Lock(0)];
                if w {
                    out.push(Op::Access(m, false));
                }
                if m > 0 {
                    out.push(Op::Access(0, w));
                }
                out
            }
        }
    }
}

fn ops_gen(len_max: usize) -> impl Fn(&mut Rng) -> Vec<Op> {
    move |rng| vec_of(rng, 0..len_max, op_gen)
}

/// Builds a well-formed trace from an op list: unlocks of unheld locks and
/// double locks are dropped (the generator sanitizes rather than rejects).
fn build_trace(ops: &[Op]) -> (Trace, Vec<(u8, bool, Vec<u8>)>) {
    let mut tr = Trace::new();
    let file = tr.meta_mut().strings.intern("prop.c");
    let la = tr.meta_mut().strings.intern("lock_a");
    let lb = tr.meta_mut().strings.intern("lock_b");
    let dt = tr.meta_mut().add_data_type(DataTypeDef {
        name: "obj".into(),
        size: 16,
        members: vec![
            MemberDef {
                name: "m0".into(),
                offset: 0,
                size: 8,
                atomic: false,
                is_lock: false,
            },
            MemberDef {
                name: "m1".into(),
                offset: 8,
                size: 8,
                atomic: false,
                is_lock: false,
            },
        ],
    });
    tr.meta_mut().add_task("t");
    let loc = SourceLoc::new(file, 1);
    let mut ts = 0u64;
    let mut push = |tr: &mut Trace, e: Event| {
        ts += 1;
        tr.push(ts, e);
    };
    push(&mut tr, Event::TaskSwitch { task: TaskId(0) });
    for (addr, name) in [(0x100u64, la), (0x200, lb)] {
        push(
            &mut tr,
            Event::LockInit {
                addr,
                name,
                flavor: LockFlavor::Spinlock,
                is_static: true,
            },
        );
    }
    push(
        &mut tr,
        Event::Alloc {
            id: AllocId(1),
            addr: 0x1000,
            size: 16,
            data_type: dt,
            subclass: None,
        },
    );

    // Reference interpretation: expected (member, is_write, held locks).
    let mut held: Vec<u8> = Vec::new();
    let mut expected = Vec::new();
    for op in ops {
        match *op {
            Op::Lock(l) => {
                if !held.contains(&l) {
                    held.push(l);
                    push(
                        &mut tr,
                        Event::LockAcquire {
                            addr: 0x100 + 0x100 * u64::from(l),
                            mode: AcquireMode::Exclusive,
                            loc,
                        },
                    );
                }
            }
            Op::Unlock(l) => {
                if let Some(p) = held.iter().position(|&h| h == l) {
                    held.remove(p);
                    push(
                        &mut tr,
                        Event::LockRelease {
                            addr: 0x100 + 0x100 * u64::from(l),
                            loc,
                        },
                    );
                }
            }
            Op::Access(m, w) => {
                push(
                    &mut tr,
                    Event::MemAccess {
                        kind: if w {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                        addr: 0x1000 + 8 * u64::from(m),
                        size: 8,
                        loc,
                        atomic: false,
                    },
                );
                expected.push((m, w, held.clone()));
            }
        }
    }
    (tr, expected)
}

/// Turns generated `(lock id)` sequences into deduplicated observations.
fn observations_from(seqs: &[Vec<u8>], counts: &[u64]) -> Vec<Observation> {
    seqs.iter()
        .zip(counts)
        .map(|(seq, &count)| {
            // Deduplicate within a sequence (held sets are sets).
            let mut locks: Vec<LockDescriptor> = Vec::new();
            for &l in seq {
                let d = LockDescriptor::global(&format!("L{l}"));
                if !locks.contains(&d) {
                    locks.push(d);
                }
            }
            Observation { locks, count }
        })
        .collect()
}

/// The importer's transaction reconstruction agrees with the reference
/// interpreter for every access.
#[test]
fn txn_reconstruction_matches_reference() {
    prop::check(
        "txn_reconstruction_matches_reference",
        ops_gen(120),
        |ops| {
            let (trace, expected) = build_trace(ops);
            let db = import(&trace, &FilterConfig::with_defaults(), 1);
            prop_assert_eq!(db.accesses.len(), expected.len());
            for (access, (m, w, held)) in db.accesses.iter().zip(&expected) {
                prop_assert_eq!(access.member, u32::from(*m));
                prop_assert_eq!(access.kind == AccessKind::Write, *w);
                let txn = db.txn(access.txn.expect("every access has a txn"));
                let got: Vec<u64> = txn.locks.iter().map(|h| db.lock(h.lock).addr).collect();
                let want: Vec<u64> = held.iter().map(|&l| 0x100 + 0x100 * u64::from(l)).collect();
                prop_assert_eq!(got, want, "held-lock order must be acquisition order");
            }
            Ok(())
        },
    );
}

/// Binary codec round trip for arbitrary generated traces.
#[test]
fn codec_round_trips() {
    prop::check("codec_round_trips", ops_gen(150), |ops| {
        let (trace, _) = build_trace(ops);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("encode");
        let back = read_trace(&mut buf.as_slice()).expect("decode");
        prop_assert_eq!(trace, back);
        Ok(())
    });
}

/// JSON codec round trip for the same arbitrary traces (the in-tree
/// `jsonio` layer must agree with the binary codec's event model).
#[test]
fn json_round_trips() {
    prop::check("json_round_trips", ops_gen(150), |ops| {
        let (trace, _) = build_trace(ops);
        let text = lockdoc_trace::jsonio::trace_to_json(&trace);
        let back = lockdoc_trace::jsonio::trace_from_json(&text)
            .map_err(|e| format!("decode failed: {e}"))?;
        prop_assert_eq!(trace, back);
        Ok(())
    });
}

/// Hypothesis support never increases when a lock is appended (support
/// anti-monotonicity), and `sa <= total` always holds.
#[test]
fn support_is_antimonotone() {
    let gen = |rng: &mut Rng| {
        let seqs = vec_of(rng, 1..12, |r| vec_of(r, 0..5, |r| r.gen_range(0u8..5)));
        let counts = vec_of(rng, 12..13, |r| r.gen_range(1u64..50));
        (seqs, counts)
    };
    prop::check("support_is_antimonotone", gen, |(seqs, counts)| {
        let observations = observations_from(seqs, counts);
        if observations.is_empty() {
            return Ok(());
        }
        let set = enumerate(0, AccessKind::Write, &observations);
        let total: u64 = observations.iter().map(|o| o.count).sum();
        prop_assert_eq!(set.total, total);
        for h in &set.hypotheses {
            prop_assert!(h.sa <= set.total);
            // Dropping the last lock can only gain support.
            if h.locks.len() > 1 {
                let shorter = &h.locks[..h.locks.len() - 1];
                if let Some(sh) = set.support_of(shorter) {
                    prop_assert!(sh.sa >= h.sa);
                }
            }
        }
        Ok(())
    });
}

/// The winner obeys the selection contract: its support is above the
/// threshold and no candidate has strictly lower support (nor equal
/// support with more locks).
#[test]
fn winner_satisfies_contract() {
    let gen = |rng: &mut Rng| {
        let seqs = vec_of(rng, 1..10, |r| vec_of(r, 0..4, |r| r.gen_range(0u8..4)));
        let counts = vec_of(rng, 10..11, |r| r.gen_range(1u64..40));
        let threshold = rng.gen_range_f64(0.5..1.0);
        (seqs, counts, threshold)
    };
    prop::check(
        "winner_satisfies_contract",
        gen,
        |(seqs, counts, threshold)| {
            let observations = observations_from(seqs, counts);
            if observations.is_empty() {
                return Ok(());
            }
            let threshold = threshold.clamp(0.0, 1.0);
            let set = enumerate(0, AccessKind::Write, &observations);
            let cfg = SelectionConfig::with_threshold(threshold);
            let w = select(&set, &cfg).expect("enumerated sets always select");
            prop_assert!(w.hypothesis.sr + 1e-12 >= threshold);
            for h in &set.hypotheses {
                if h.sr + 1e-12 >= threshold {
                    prop_assert!(
                        h.sa > w.hypothesis.sa
                            || (h.sa == w.hypothesis.sa
                                && h.locks.len() <= w.hypothesis.locks.len()),
                        "candidate {:?} beats winner {:?}",
                        h,
                        w.hypothesis
                    );
                }
            }
            // Every observation that complies with the winner also complies
            // with each of its prefixes (sanity of the subsequence semantics).
            for obs in &observations {
                if complies(&obs.locks, &w.hypothesis.locks) {
                    for cut in 0..w.hypothesis.locks.len() {
                        prop_assert!(complies(&obs.locks, &w.hypothesis.locks[..cut]));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Sharded derivation is output-invariant in the worker count: for any
/// generated trace, `derive_par` at jobs ∈ {2, 3, 5, 8} mines exactly the
/// rules of the serial jobs=1 path (fewer cases than the other
/// properties — each case runs the derivator five times).
#[test]
fn derive_is_jobs_invariant() {
    let cfg = prop::Config {
        cases: 24,
        ..prop::Config::from_env()
    };
    prop::check_with(&cfg, "derive_is_jobs_invariant", ops_gen(200), |ops| {
        let (trace, _) = build_trace(ops);
        let db = import(&trace, &FilterConfig::with_defaults(), 1);
        let dcfg = DeriveConfig::default();
        let serial = derive_par(&db, &dcfg, 1);
        for jobs in [2usize, 3, 5, 8] {
            prop_assert_eq!(
                &serial,
                &derive_par(&db, &dcfg, jobs),
                "derive output differs at jobs = {}",
                jobs
            );
        }
        Ok(())
    });
}

/// One step of the multi-flow trace generator behind
/// [`import_is_jobs_invariant`]: unlike [`Op`] it exercises task
/// switches, interrupt contexts, allocation churn (including adversarial
/// double frees and overlapping allocs), function frames, and lock ops on
/// both static and unknown addresses — every partitioning decision the
/// parallel importer makes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FlowOp {
    Switch(u8),
    IrqEnter(bool), // true = hardirq
    IrqExit(bool),
    Lock(u8),
    Unlock(u8),
    Alloc(u8),            // slot 0..3
    Free(u8),             // slot (may double-free)
    Access(u8, u8, bool), // slot, member 0..1, is_write
    FnEnter(u8),
    FnExit(u8),
}

impl Shrink for FlowOp {}

fn flow_op_gen(rng: &mut Rng) -> FlowOp {
    match rng.gen_range(0u8..10) {
        0 => FlowOp::Switch(rng.gen_range(0u8..3)),
        1 => FlowOp::IrqEnter(rng.gen_bool(0.5)),
        2 => FlowOp::IrqExit(rng.gen_bool(0.5)),
        3 => FlowOp::Lock(rng.gen_range(0u8..2)),
        4 => FlowOp::Unlock(rng.gen_range(0u8..2)),
        5 => FlowOp::Alloc(rng.gen_range(0u8..3)),
        6 => FlowOp::Free(rng.gen_range(0u8..3)),
        7 => FlowOp::FnEnter(rng.gen_range(0u8..3)),
        8 => FlowOp::FnExit(rng.gen_range(0u8..3)),
        _ => FlowOp::Access(
            rng.gen_range(0u8..3),
            rng.gen_range(0u8..2),
            rng.gen_bool(0.5),
        ),
    }
}

/// Builds a trace from flow ops *without* sanitizing: the importer must
/// treat malformed input (double frees, unbalanced contexts, unknown-lock
/// releases) identically on the serial and parallel paths.
fn build_multiflow_trace(ops: &[FlowOp]) -> Trace {
    use lockdoc_trace::event::ContextKind;
    let mut tr = Trace::new();
    let file = tr.meta_mut().strings.intern("flow.c");
    let lname = tr.meta_mut().strings.intern("lk");
    let dt = tr.meta_mut().add_data_type(DataTypeDef {
        name: "obj".into(),
        size: 16,
        members: vec![
            MemberDef {
                name: "m0".into(),
                offset: 0,
                size: 8,
                atomic: false,
                is_lock: false,
            },
            MemberDef {
                name: "m1".into(),
                offset: 8,
                size: 8,
                atomic: false,
                is_lock: false,
            },
        ],
    });
    for t in 0..3 {
        tr.meta_mut().add_task(&format!("t{t}"));
    }
    for f in 0..3 {
        tr.meta_mut().add_function(&format!("f{f}"));
    }
    let loc = SourceLoc::new(file, 7);
    let mut ts = 0u64;
    let mut push = |tr: &mut Trace, e: Event| {
        ts += 1;
        tr.push(ts, e);
    };
    push(&mut tr, Event::TaskSwitch { task: TaskId(0) });
    for l in 0..2u64 {
        push(
            &mut tr,
            Event::LockInit {
                addr: 0x100 + 0x100 * l,
                name: lname,
                flavor: LockFlavor::Spinlock,
                is_static: true,
            },
        );
    }
    let mut next_alloc = 1u64;
    for op in ops {
        let ctx = |h: bool| {
            if h {
                ContextKind::Hardirq
            } else {
                ContextKind::Softirq
            }
        };
        let e = match *op {
            FlowOp::Switch(t) => Event::TaskSwitch {
                task: TaskId(u32::from(t)),
            },
            FlowOp::IrqEnter(h) => Event::ContextEnter { kind: ctx(h) },
            FlowOp::IrqExit(h) => Event::ContextExit { kind: ctx(h) },
            FlowOp::Lock(l) => Event::LockAcquire {
                addr: 0x100 + 0x100 * u64::from(l),
                mode: AcquireMode::Exclusive,
                loc,
            },
            FlowOp::Unlock(l) => Event::LockRelease {
                addr: 0x100 + 0x100 * u64::from(l),
                loc,
            },
            FlowOp::Alloc(s) => {
                let id = AllocId(next_alloc);
                next_alloc += 1;
                Event::Alloc {
                    id,
                    addr: 0x1000 + 0x100 * u64::from(s),
                    size: 16,
                    data_type: dt,
                    subclass: None,
                }
            }
            // Adversarial: frees by the *first* id that targeted the slot;
            // repeat frees of the same slot become double frees.
            FlowOp::Free(s) => Event::Free {
                id: AllocId(u64::from(s) + 1),
            },
            FlowOp::Access(s, m, w) => Event::MemAccess {
                kind: if w {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                addr: 0x1000 + 0x100 * u64::from(s) + 8 * u64::from(m),
                size: 8,
                loc,
                atomic: false,
            },
            FlowOp::FnEnter(f) => Event::FnEnter {
                func: lockdoc_trace::ids::FnId(u32::from(f)),
            },
            FlowOp::FnExit(f) => Event::FnExit {
                func: lockdoc_trace::ids::FnId(u32::from(f)),
            },
        };
        push(&mut tr, e);
    }
    tr
}

/// The flow-partitioned parallel importer is output-invariant in the
/// worker count: for arbitrary (including malformed) multi-flow traces,
/// `import` at jobs ∈ {2, 3, 5, 8} equals the serial jobs=1 database —
/// accesses, txns, stacks, allocations, locks, and statistics alike.
#[test]
fn import_is_jobs_invariant() {
    let cfg = prop::Config {
        cases: 40,
        ..prop::Config::from_env()
    };
    let gen = |rng: &mut Rng| vec_of(rng, 0..250, flow_op_gen);
    prop::check_with(&cfg, "import_is_jobs_invariant", gen, |ops| {
        let trace = build_multiflow_trace(ops);
        let serial = import(&trace, &FilterConfig::with_defaults(), 1);
        for jobs in [2usize, 3, 5, 8] {
            prop_assert_eq!(
                &serial,
                &import(&trace, &FilterConfig::with_defaults(), jobs),
                "import output differs at jobs = {}",
                jobs
            );
        }
        Ok(())
    });
}

/// Streaming import equals materialized import: driving the importer
/// straight off a chunked `TraceReader` (with a tiny chunk size, so
/// records straddle chunk boundaries constantly) produces the same
/// database as decoding the full event vector first — serial and
/// parallel alike.
#[test]
fn import_stream_matches_import() {
    let cfg = prop::Config {
        cases: 30,
        ..prop::Config::from_env()
    };
    let gen = |rng: &mut Rng| vec_of(rng, 0..250, flow_op_gen);
    prop::check_with(&cfg, "import_stream_matches_import", gen, |ops| {
        let trace = build_multiflow_trace(ops);
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).expect("encode");
        for jobs in [1usize, 4] {
            let reader = TraceReader::with_chunk_size(bytes.as_slice(), 7).expect("header");
            let streamed = import_stream(reader, &FilterConfig::with_defaults(), jobs)
                .expect("clean container streams");
            prop_assert_eq!(
                &import(&trace, &FilterConfig::with_defaults(), jobs),
                &streamed,
                "streamed import differs at jobs = {}",
                jobs
            );
        }
        Ok(())
    });
}

/// The cached-archive codec is an identity on imported stores: for
/// arbitrary multi-flow traces, write → read under the same cache key
/// reproduces the database exactly, and a wrong key misses.
#[test]
fn archive_round_trips_imported_stores() {
    let cfg = prop::Config {
        cases: 30,
        ..prop::Config::from_env()
    };
    let gen = |rng: &mut Rng| vec_of(rng, 0..250, flow_op_gen);
    prop::check_with(&cfg, "archive_round_trips_imported_stores", gen, |ops| {
        let trace = build_multiflow_trace(ops);
        let config = FilterConfig::with_defaults();
        let db = import(&trace, &config, 1);
        let fp = filter_fingerprint(&config);
        let bytes = write_archive(&db, 0xfeed, fp);
        let back = read_archive(&bytes, 0xfeed, fp, std::sync::Arc::clone(&db.meta));
        prop_assert_eq!(&Some(db), &back, "archive roundtrip must be exact");
        prop_assert!(
            read_archive(&bytes, 0xbeef, fp, {
                let db = back.as_ref().expect("hit");
                std::sync::Arc::clone(&db.meta)
            })
            .is_none(),
            "a wrong trace checksum must miss"
        );
        Ok(())
    });
}

/// Sharded workload generation is reproducible and jobs-invariant: the
/// same (seed, shards) pair yields a byte-identical trace and fault
/// oracle at any worker count (fewer cases — each runs the simulator
/// three times).
#[test]
fn run_mix_is_seed_jobs_reproducible() {
    let cfg = prop::Config {
        cases: 8,
        ..prop::Config::from_env()
    };
    let gen = |rng: &mut Rng| {
        (
            rng.gen_range(0u64..1 << 48),
            rng.gen_range(1u64..5), // shards
        )
    };
    prop::check_with(
        &cfg,
        "run_mix_is_seed_jobs_reproducible",
        gen,
        |&(seed, shards)| {
            let scfg = ksim::config::SimConfig::with_seed(seed);
            let a = ksim::parallel::run_mix_sharded(&scfg, None, 60, shards, 1)
                .map_err(|e| format!("generation failed: {e}"))?;
            for jobs in [2usize, 4] {
                let b = ksim::parallel::run_mix_sharded(&scfg, None, 60, shards, jobs)
                    .map_err(|e| format!("generation failed: {e}"))?;
                prop_assert_eq!(&a.trace, &b.trace, "trace differs at jobs = {}", jobs);
                prop_assert_eq!(
                    &a.fault_log.injected,
                    &b.fault_log.injected,
                    "fault oracle differs at jobs = {}",
                    jobs
                );
            }
            Ok(())
        },
    );
}

/// Rule notation: display then parse is the identity.
#[test]
fn rulespec_round_trips() {
    let gen = |rng: &mut Rng| {
        let type_idx = rng.gen_range(0usize..3);
        let member_idx = rng.gen_range(0usize..4);
        let is_write = rng.gen_bool(0.5);
        let lock_kinds = vec_of(rng, 0..3, |r| r.gen_range(0u8..4));
        (type_idx, member_idx, is_write, lock_kinds)
    };
    prop::check(
        "rulespec_round_trips",
        gen,
        |(type_idx, member_idx, is_write, lock_kinds)| {
            let types = ["inode", "journal_t", "dentry"];
            let members = ["i_state", "j_flags", "d_hash", "some_member"];
            let type_idx = type_idx % types.len();
            let member_idx = member_idx % members.len();
            let locks: Vec<LockDescriptor> = lock_kinds
                .iter()
                .enumerate()
                .map(|(i, &k)| match k {
                    0 => LockDescriptor::global(&format!("glock_{i}")),
                    1 => LockDescriptor::es(&format!("mem{i}"), types[type_idx]),
                    2 => LockDescriptor::eo(&format!("mem{i}"), "other_type"),
                    _ => LockDescriptor::rcu(),
                })
                .collect();
            let rule = RuleSpec {
                type_name: types[type_idx].to_owned(),
                subclass: None,
                member: members[member_idx].to_owned(),
                kind: if *is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                locks,
            };
            let printed = rule.to_string();
            let reparsed = parse_rule(&printed)
                .expect("parses")
                .expect("not a comment");
            prop_assert_eq!(rule, reparsed);
            Ok(())
        },
    );
}

/// Matrix invariants: WoR classification is a partition of the folded
/// matrix, and totals equal the raw access counts per member.
#[test]
fn matrix_wor_partitions_units() {
    prop::check("matrix_wor_partitions_units", ops_gen(150), |ops| {
        let (trace, expected) = build_trace(ops);
        let db = import(&trace, &FilterConfig::with_defaults(), 1);
        let group = match db.observation_groups().first() {
            Some(&g) => g,
            None => return Ok(()), // no accesses generated
        };
        let matrix = AccessMatrix::build(&db, group);
        let mut total_reads = 0u64;
        let mut total_writes = 0u64;
        for (member, mm) in &matrix.members {
            let (r, w) = mm.totals();
            total_reads += r;
            total_writes += w;
            let read_units = mm.relevant_units(AccessKind::Read);
            let write_units = mm.relevant_units(AccessKind::Write);
            // WoR: a unit is read XOR write, never both.
            for u in &read_units {
                prop_assert!(
                    !write_units.contains(u),
                    "member {member}: unit in both classes"
                );
            }
            prop_assert_eq!(read_units.len() + write_units.len(), mm.cells.len());
            // Folded never exceeds observed; overrides are bounded.
            for c in mm.cells.values() {
                prop_assert!(u64::from(c.folded_read()) <= c.reads.max(1));
            }
            prop_assert!(mm.wor_overrides() <= mm.cells.len() as u64);
        }
        let raw_reads = expected.iter().filter(|(_, w, _)| !*w).count() as u64;
        let raw_writes = expected.iter().filter(|(_, w, _)| *w).count() as u64;
        prop_assert_eq!(total_reads, raw_reads);
        prop_assert_eq!(total_writes, raw_writes);
        Ok(())
    });
}

/// Order-graph invariants: edge counts are bounded by lock pairs in
/// transactions, and inversions are symmetric findings.
#[test]
fn order_graph_invariants() {
    prop::check("order_graph_invariants", ops_gen(150), |ops| {
        let (trace, _) = build_trace(ops);
        let db = import(&trace, &FilterConfig::with_defaults(), 1);
        let graph = OrderGraph::build(&db);
        // An edge requires at least one txn with >= 2 locks.
        let multi = db.txns.iter().filter(|t| t.locks.len() >= 2).count();
        if multi == 0 {
            prop_assert!(graph.edges.is_empty());
        }
        for ((a, b), e) in &graph.edges {
            prop_assert!(a != b, "same-class edges are excluded");
            prop_assert_eq!(&e.from, a);
            prop_assert_eq!(&e.to, b);
            prop_assert!(e.count >= 1);
        }
        // Each inversion corresponds to both directed edges existing.
        for inv in graph.inversions() {
            let f = (inv.forward.from.clone(), inv.forward.to.clone());
            let r = (inv.forward.to.clone(), inv.forward.from.clone());
            prop_assert!(graph.edges.contains_key(&f));
            prop_assert!(graph.edges.contains_key(&r));
            prop_assert!(inv.forward.count >= inv.backward.count);
        }
        Ok(())
    });
}

/// In-situ / ex-post lock-order parity: every warning the runtime
/// `ksim::lockdep` validator raises during a simulation corresponds to an
/// inversion the ex-post `OrderGraph` finds in the recorded trace of the
/// same run. Both analyses name classes identically (globals by name,
/// embedded locks as `member in type`), so the warning's unordered class
/// pair must appear among the graph's inversion pairs (fewer cases —
/// each runs the full simulator).
#[test]
fn lockdep_warnings_are_order_graph_inversions() {
    let cfg = prop::Config {
        cases: 12,
        ..prop::Config::from_env()
    };
    let gen = |rng: &mut Rng| rng.gen_range(0u64..1 << 48);
    let warnings_seen = std::cell::Cell::new(0usize);
    prop::check_with(
        &cfg,
        "lockdep_warnings_are_order_graph_inversions",
        gen,
        |&seed| {
            let scfg = ksim::config::SimConfig::with_seed(seed)
                .with_faults(ksim::rules::default_fault_plan());
            let mut machine = ksim::subsys::Machine::boot(scfg);
            machine.run_mix(900);
            let warnings = machine.k.lockdep.warnings.clone();
            let trace = machine.finish();
            let db = import(&trace, &ksim::rules::filter_config(), 1);
            let graph = OrderGraph::build(&db);
            let inversion_pairs: Vec<(String, String)> = graph
                .inversions()
                .iter()
                .map(|inv| {
                    let mut pair = [inv.forward.from.name.clone(), inv.forward.to.name.clone()];
                    pair.sort();
                    let [a, b] = pair;
                    (a, b)
                })
                .collect();
            warnings_seen.set(warnings_seen.get() + warnings.len());
            for w in &warnings {
                let mut pair = [w.held_class.clone(), w.acquired_class.clone()];
                pair.sort();
                let [a, b] = pair;
                prop_assert!(
                    inversion_pairs.contains(&(a.clone(), b.clone())),
                    "lockdep warned about {} <-> {} but the ex-post graph has \
                     inversions {:?} (seed {})",
                    a,
                    b,
                    inversion_pairs,
                    seed
                );
            }
            Ok(())
        },
    );
    // Non-vacuity: the default fault plan injects an order inversion, so
    // the runs above must actually have exercised the property.
    assert!(
        warnings_seen.get() > 0,
        "no lockdep warnings across any case — the parity property ran vacuously"
    );
}

/// Parsing a multi-line rule file equals parsing its lines separately.
#[test]
fn parse_rules_is_linewise() {
    prop::check(
        "parse_rules_is_linewise",
        |rng| rng.gen_range(1usize..6),
        |&n| {
            let lines: Vec<String> = (0..n)
                .map(|i| format!("inode.member{i}:w = ES(i_lock in inode)"))
                .collect();
            let text = lines.join("\n");
            let bulk = parse_rules(&text).expect("bulk parses");
            prop_assert_eq!(bulk.len(), n);
            for (i, rule) in bulk.iter().enumerate() {
                let single = parse_rule(&lines[i]).unwrap().unwrap();
                prop_assert_eq!(rule, &single);
            }
            Ok(())
        },
    );
}
