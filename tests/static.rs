//! Integration properties of the static outlier lockset analysis
//! (ISSUE 10): the seeded renderer's injected-outlier oracle is
//! recovered exactly, the whole pipeline is byte-identical at any
//! `--jobs`, and the corpus-language parser is a printing fixed point
//! with file-order-invariant output.

use ksim::srcgen::{render, SrcGenConfig};
use locksrc::ast::{parse_tree, print_program};
use locksrc::{analyze_tree, MinerConfig};
use std::collections::BTreeSet;

/// Tentpole acceptance: across a seed sweep, the static pass reports
/// exactly the planted `(file, line)` deviations — 100 % recall (the
/// acceptance bar is ≥ 90 %) and no false positives on the rendered
/// ground truth.
#[test]
fn planted_outliers_are_recovered_exactly_across_seeds() {
    for seed in [1u64, 7, 42, 1234, 99_999] {
        let corpus = render(&SrcGenConfig {
            seed,
            ..SrcGenConfig::default()
        });
        assert!(!corpus.planted.is_empty(), "seed {seed} plants nothing");
        let report = analyze_tree(&corpus.files, &MinerConfig::default(), 2);
        let reported: BTreeSet<(String, u32)> = report
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line))
            .collect();
        assert_eq!(
            reported,
            corpus.planted_sites(),
            "seed {seed}: static findings must equal the planted oracle"
        );
        // The expected/observed patterns agree with the fault plan too.
        for p in &corpus.planted {
            let f = report
                .findings
                .iter()
                .find(|f| f.file == p.file && f.line == p.line && f.kind == p.kind)
                .unwrap_or_else(|| panic!("seed {seed}: no finding at {}:{}", p.file, p.line));
            assert_eq!(
                f.expected, p.expected,
                "seed {seed} at {}:{}",
                p.file, p.line
            );
            assert_eq!(
                f.observed, p.observed,
                "seed {seed} at {}:{}",
                p.file, p.line
            );
        }
    }
}

/// The full static report — counts, patterns, ranked findings — is
/// byte-identical at `--jobs` 1 vs 4 (JSON text compared, matching the
/// CLI identity gates).
#[test]
fn static_report_is_jobs_invariant() {
    let corpus = render(&SrcGenConfig::default());
    let serial = analyze_tree(&corpus.files, &MinerConfig::default(), 1);
    let serial_json = lockdoc_platform::json::to_string_pretty(&serial);
    for jobs in [2, 4, 8] {
        let par = analyze_tree(&corpus.files, &MinerConfig::default(), jobs);
        assert_eq!(par, serial, "jobs = {jobs}");
        assert_eq!(
            lockdoc_platform::json::to_string_pretty(&par),
            serial_json,
            "jobs = {jobs}"
        );
    }
}

/// Printing a parsed program and re-parsing it reaches a fixed point in
/// one round (line numbers settle after the first print), on both the
/// rendered ground-truth tree and the synthetic release corpora.
#[test]
fn parser_print_parse_is_a_fixed_point_on_generated_corpora() {
    let mut trees: Vec<Vec<(String, String)>> = Vec::new();
    for seed in [3u64, 42] {
        trees.push(
            render(&SrcGenConfig {
                seed,
                ..SrcGenConfig::default()
            })
            .files,
        );
    }
    let spec = locksrc::CorpusSpec::for_release("v3.10").expect("known release");
    trees.push(spec.generate(11).files);

    for files in &trees {
        let canon = print_program(&parse_tree(files, 1));
        let again = print_program(&parse_tree(&canon, 1));
        assert_eq!(again, canon, "print ∘ parse must be a fixed point");
    }
}

/// Parsing is total-order deterministic: shuffling the input file order
/// yields the same canonical program, at any jobs count.
#[test]
fn parse_tree_is_input_order_and_jobs_invariant() {
    let corpus = render(&SrcGenConfig::default());
    let canon = print_program(&parse_tree(&corpus.files, 1));
    let mut reversed = corpus.files.clone();
    reversed.reverse();
    for jobs in [1usize, 4] {
        assert_eq!(print_program(&parse_tree(&reversed, jobs)), canon);
    }
}

/// Planting a deviation never erodes the majority below the mining
/// threshold: every planted member still derives its ground-truth
/// pattern as the majority.
#[test]
fn planted_members_keep_their_majority_pattern() {
    for seed in [5u64, 42, 77] {
        let corpus = render(&SrcGenConfig {
            seed,
            ..SrcGenConfig::default()
        });
        let report = analyze_tree(&corpus.files, &MinerConfig::default(), 2);
        for p in &corpus.planted {
            let pat = report
                .patterns
                .iter()
                .find(|m| m.type_name == p.type_name && m.member == p.member && m.kind == p.kind)
                .unwrap_or_else(|| {
                    panic!("seed {seed}: no pattern for {}.{}", p.type_name, p.member)
                });
            assert_eq!(pat.majority, p.expected, "seed {seed}");
            assert!(pat.confidence >= 0.75, "seed {seed}: {}", pat.confidence);
        }
    }
}
