//! Exhaustive crash-consistency property for the corpus store.
//!
//! The headline robustness claim: for EVERY injection point in an
//! add/add/build/drop schedule — every write, rename, remove, and fsync
//! the pipeline issues — crashing there, rebooting, and running
//! `fsck --repair --gc` leaves the corpus in exactly the state before or
//! after the interrupted operation, never a torn hybrid; and the rules
//! derived from the recovered corpus (through the possibly-stale cache)
//! are byte-identical to a from-scratch derivation over the same
//! members, at `--jobs` 1 and 4.
//!
//! The schedule is first run on an armed-but-counting in-memory
//! filesystem to enumerate its injection points and record the member
//! state between operations; then each point is re-run as a real crash
//! under the adversarial replay model (lost/torn/reordered un-fsynced
//! state — see `lockdoc_platform::vfs`).
//!
//! `LOCKDOC_CRASH_ITERS=N` soaks each crash point under N adversarial
//! seeds (default 1), mirroring the `LOCKDOC_PROPS_ITERS` corruption
//! soak.

use lockdoc_cli::corpus::{derive_members, load_corpus, CorpusCtx, LoadOpts};
use lockdoc_cli::run;
use lockdoc_platform::vfs::{CrashPlan, Vfs};
use lockdoc_trace::corpus::{fsck, CorpusStore, FsckOptions};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

const SRC_DIR: &str = "/src";
const CORPUS_DIR: &str = "/corpus";
const CACHE_DIR: &str = "/cache";

#[derive(Clone, Copy, Debug)]
enum Op {
    Add(&'static str),
    Drop(&'static str),
    Build,
}

const SCHEDULE: &[Op] = &[
    Op::Add("a.ldoc"),
    Op::Add("b.ldoc"),
    Op::Build,
    Op::Drop("b.ldoc"),
];

/// Generates the two member containers once, through the real CLI.
fn member_bytes() -> Vec<(&'static str, Vec<u8>)> {
    let dir = std::env::temp_dir().join("lockdoc-crash-suite-src");
    fs::create_dir_all(&dir).unwrap();
    let mut out = Vec::new();
    for (name, seed, mix) in [("a.ldoc", "71", None), ("b.ldoc", "72", Some("pipes=1"))] {
        let path = dir.join(name);
        let mut argv: Vec<String> = ["trace", "--ops", "200", "--seed", seed, "--out"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        argv.push(path.to_str().unwrap().to_owned());
        if let Some(m) = mix {
            argv.extend(["--mix".to_owned(), m.to_owned()]);
        }
        run(&argv).unwrap();
        out.push((name, fs::read(&path).unwrap()));
    }
    fs::remove_dir_all(&dir).ok();
    out
}

/// A fresh in-memory filesystem with the source containers staged and
/// an empty corpus store opened on it.
fn setup(sources: &[(&'static str, Vec<u8>)]) -> (Vfs, CorpusStore) {
    let vfs = Vfs::mem();
    vfs.create_dir_all(Path::new(SRC_DIR)).unwrap();
    for (name, bytes) in sources {
        vfs.write(&Path::new(SRC_DIR).join(name), bytes).unwrap();
    }
    let store =
        CorpusStore::open_on(vfs.clone(), Path::new(CORPUS_DIR), Path::new(CACHE_DIR)).unwrap();
    (vfs, store)
}

/// Member name -> container bytes, the corpus state a crash must snap to.
fn member_state(store: &CorpusStore) -> BTreeMap<String, Vec<u8>> {
    store
        .trace_names()
        .unwrap()
        .into_iter()
        .map(|n| {
            let bytes = store.vfs().read(&store.trace_path(&n)).unwrap();
            (n, bytes)
        })
        .collect()
}

/// Runs the full corpus pipeline (load + incremental derive) and renders
/// the mined rules — the bytes the determinism contract is stated over.
fn build_rules(store: &CorpusStore, jobs: usize) -> String {
    let ctx = CorpusCtx::with_store(store.clone(), 0.9, jobs);
    let members = load_corpus(
        &ctx,
        &LoadOpts {
            need_matrix: true,
            need_trace: false,
        },
    )
    .unwrap();
    let derived = derive_members(&ctx, &members).unwrap();
    lockdoc_cli::render_rules_text(&derived.rules, false)
}

/// From-scratch rules over an explicit member set: a brand-new
/// filesystem, members written straight into the corpus directory
/// (membership IS the directory listing), cold caches.
fn scratch_rules(members: &BTreeMap<String, Vec<u8>>, jobs: usize) -> String {
    let vfs = Vfs::mem();
    let store =
        CorpusStore::open_on(vfs.clone(), Path::new(CORPUS_DIR), Path::new(CACHE_DIR)).unwrap();
    for (name, bytes) in members {
        vfs.write(&store.trace_path(name), bytes).unwrap();
    }
    build_rules(&store, jobs)
}

/// Applies one schedule op. Returns Err only for I/O failures — which,
/// under an armed plan, are exactly the injected crash.
fn run_op(store: &CorpusStore, op: Op) -> Result<(), String> {
    match op {
        Op::Add(name) => store
            .add(&Path::new(SRC_DIR).join(name))
            .map(|_| ())
            .map_err(|e| e.to_string()),
        Op::Drop(name) => store.drop_trace(name).map_err(|e| e.to_string()),
        Op::Build => {
            // Cache writes are best-effort (counted, not propagated), so
            // a build can swallow a crash; the caller checks
            // `vfs.crashed()` rather than this result.
            let ctx = CorpusCtx::with_store(store.clone(), 0.9, 1);
            let members = load_corpus(
                &ctx,
                &LoadOpts {
                    need_matrix: true,
                    need_trace: false,
                },
            )
            .map_err(|e| e.to_string())?;
            let _ = derive_members(&ctx, &members);
            Ok(())
        }
    }
}

#[test]
fn every_crash_point_recovers_to_pre_or_post_op_state() {
    let sources = member_bytes();
    let seeds: u64 = std::env::var("LOCKDOC_CRASH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    // Pass 1: count the schedule's injection points and record the
    // member state before/after every op (states[i] = before op i).
    let (vfs, store) = setup(&sources);
    vfs.arm(CrashPlan::count_only());
    let mut states = vec![member_state(&store)];
    let mut expected_rules: Vec<Option<String>> = vec![None];
    for op in SCHEDULE {
        run_op(&store, *op).unwrap();
        assert!(!vfs.crashed());
        states.push(member_state(&store));
        expected_rules.push(None);
    }
    let total_points = vfs.points();
    assert!(
        total_points >= 30,
        "schedule enumerated only {total_points} injection points"
    );

    // Lazily computed scratch rules per recorded member state.
    let scratch_for = |states: &[BTreeMap<String, Vec<u8>>],
                       cache: &mut Vec<Option<String>>,
                       idx: usize|
     -> Option<String> {
        if states[idx].is_empty() {
            return None;
        }
        if cache[idx].is_none() {
            cache[idx] = Some(scratch_rules(&states[idx], 1));
        }
        cache[idx].clone()
    };

    // Pass 2: crash at every point, under every soak seed.
    for k in 0..total_points {
        for s in 0..seeds {
            let seed = 0xC0FFEE ^ s;
            let (vfs, store) = setup(&sources);
            vfs.arm(CrashPlan::crash_at(k, seed));
            let mut interrupted = None;
            for (i, op) in SCHEDULE.iter().enumerate() {
                let result = run_op(&store, *op);
                if vfs.crashed() {
                    interrupted = Some(i);
                    break;
                }
                result.unwrap_or_else(|e| {
                    panic!("point {k} seed {seed}: op {op:?} failed without a crash: {e}")
                });
            }
            let i = interrupted
                .unwrap_or_else(|| panic!("crash point {k} never fired (schedule shrank?)"));

            vfs.reboot();
            let report = fsck(
                &store,
                &CorpusCtx::with_store(store.clone(), 0.9, 1).filter,
                1,
                FsckOptions {
                    repair: true,
                    gc: true,
                },
            )
            .unwrap();

            // The recovered corpus is exactly the pre-op or post-op
            // member set — never a torn hybrid.
            let after = member_state(&store);
            assert!(
                after == states[i] || after == states[i + 1],
                "crash at point {k} (op {i}: {:?}, seed {seed}) left a torn corpus:\n\
                 members after recovery: {:?}\nfsck: {report:?}",
                SCHEDULE[i],
                after.keys().collect::<Vec<_>>()
            );

            // fsck converged: a second run finds nothing left to repair.
            let again = fsck(
                &store,
                &CorpusCtx::with_store(store.clone(), 0.9, 1).filter,
                1,
                FsckOptions {
                    repair: true,
                    gc: true,
                },
            )
            .unwrap();
            assert!(
                again.is_clean(),
                "point {k} seed {seed}: fsck did not converge: {again:?}"
            );

            // Rules from the recovered store — through whatever cache
            // state survived the crash — equal a from-scratch derivation
            // over the same members, at jobs 1 and 4.
            let idx = if after == states[i] { i } else { i + 1 };
            if let Some(want) = scratch_for(&states, &mut expected_rules, idx) {
                let got1 = build_rules(&store, 1);
                assert_eq!(
                    got1, want,
                    "point {k} seed {seed}: recovered rules (jobs 1) != scratch"
                );
                let got4 = build_rules(&store, 4);
                assert_eq!(
                    got4, want,
                    "point {k} seed {seed}: recovered rules (jobs 4) != scratch"
                );
            }
        }
    }
}
