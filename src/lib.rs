//! Umbrella crate for the LockDoc reproduction workspace.
//!
//! This package hosts the runnable [examples](https://doc.rust-lang.org/cargo/reference/cargo-targets.html#examples)
//! and the cross-crate integration tests. The actual functionality lives in:
//!
//! * [`ksim`] — the simulated Linux-like kernel substrate and tracer,
//! * [`lockdoc_trace`] — trace events, codecs, filters, and the relational store,
//! * [`lockdoc_core`] — the LockDoc analyses (derivation, checking, docgen, violations),
//! * [`locksrc`] — the source-corpus scanner behind the paper's Fig. 1.

pub use ksim;
pub use lockdoc_core;
pub use lockdoc_trace;
pub use locksrc;
