//! Quickstart: run a workload on the simulated kernel, derive locking
//! rules, check the documented rules, and hunt for violations.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ksim::config::SimConfig;
use ksim::rules;
use ksim::subsys::Machine;
use lockdoc_core::checker::{check_rules, summarize};
use lockdoc_core::derive::{derive, DeriveConfig};
use lockdoc_core::rulespec::parse_rules;
use lockdoc_core::violation::find_violations;
use lockdoc_trace::db::import;

fn main() {
    // Phase 1: trace an instrumented run (paper Sec. 5.2).
    let config = SimConfig::with_seed(0x1001).with_faults(rules::default_fault_plan());
    let mut machine = Machine::boot(config);
    machine.run_mix(5_000);
    let injected = machine.k.fault_log.clone();
    let trace = machine.finish();
    let summary = trace.summary();
    println!(
        "trace: {} events ({} lock ops, {} memory accesses, {} allocs)",
        summary.total, summary.lock_ops, summary.mem_accesses, summary.allocs
    );

    // Post-processing: import into the relational store (Sec. 5.3).
    let db = import(&trace, &rules::filter_config(), 1);
    println!(
        "store: {} accesses after filtering ({} filtered), {} txns, {} locks",
        db.stats.accesses_imported,
        db.stats.total_filtered(),
        db.stats.txns,
        db.stats.locks
    );

    // Phase 2: derive locking rules (Sec. 5.4).
    let mined = derive(&db, &DeriveConfig::default());
    println!("\nmined rules per observation group:");
    for group in &mined.groups {
        let r = group.rule_count(lockdoc_trace::event::AccessKind::Read);
        let w = group.rule_count(lockdoc_trace::event::AccessKind::Write);
        println!(
            "  {:24} {:3} read rules, {:3} write rules",
            group.group_name, r, w
        );
    }

    // Phase 3a: check the documented rules (Sec. 7.3).
    let documented = parse_rules(rules::documented_rules()).expect("rule file parses");
    let checked = check_rules(&db, &documented);
    println!("\ndocumented-rule validation (paper Tab. 4):");
    for row in summarize(&checked) {
        println!(
            "  {:16} #R={:3} #No={:2} #Ob={:3}  ok={:5.1}% amb={:5.1}% bad={:5.1}%",
            row.type_name,
            row.rules,
            row.not_observed,
            row.observed,
            row.pct_correct,
            row.pct_ambivalent,
            row.pct_incorrect
        );
    }

    // Phase 3b: find rule violations (Sec. 7.5).
    let violations = find_violations(&db, &mined, 3);
    println!("\nrule violations (paper Tab. 7):");
    for v in violations.iter().filter(|v| v.events > 0) {
        println!(
            "  {:24} {:6} events, {:2} members, {:3} contexts",
            v.group_name,
            v.events,
            v.members.len(),
            v.context_count()
        );
        for ex in &v.examples {
            println!(
                "      e.g. {}.{}:{} held [{}] at {} ({})",
                ex.group_name,
                ex.member_name,
                ex.kind,
                ex.held
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(" -> "),
                db.format_loc(ex.loc),
                db.format_stack(ex.stack)
            );
        }
    }
    println!(
        "\nfault oracle: {} injected faults at sites {:?}",
        injected.total(),
        injected.fired_sites()
    );
}
