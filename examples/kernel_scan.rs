//! Source-scanning scenario (paper Fig. 1): generate the calibrated
//! kernel-source corpus for each release and measure lock usage with the
//! real scanner. Point `lockdoc scan --dir` at an actual kernel checkout
//! to produce the genuine curves.
//!
//! ```sh
//! cargo run --release --example kernel_scan
//! ```

use locksrc::corpus::{CorpusSpec, RELEASES};
use locksrc::scan::scan_source;

fn main() {
    println!(
        "{:8} {:>9} {:>7} {:>6} {:>9}  (scale 1:{})",
        "release",
        "spinlock",
        "mutex",
        "rcu",
        "LoC",
        CorpusSpec::SCALE
    );
    let mut first = None;
    let mut last = None;
    for r in RELEASES {
        let spec = CorpusSpec::for_release(r.tag).unwrap();
        let tree = spec.generate(0xF161);
        let counts = scan_source(&tree.concatenated());
        println!(
            "{:8} {:>9} {:>7} {:>6} {:>9}",
            r.tag, counts.spinlock_inits, counts.mutex_inits, counts.rcu_usages, counts.loc
        );
        if first.is_none() {
            first = Some(counts);
        }
        last = Some(counts);
    }
    let (a, b) = (first.unwrap(), last.unwrap());
    let growth = |x: u64, y: u64| (y as f64 - x as f64) / x as f64 * 100.0;
    println!(
        "\ngrowth v3.0 -> v4.18: spinlocks {:+.1}% (paper +45%), mutexes {:+.1}% (paper +81%), LoC {:+.1}% (paper +73%)",
        growth(a.spinlock_inits, b.spinlock_inits),
        growth(a.mutex_inits, b.mutex_inits),
        growth(a.loc, b.loc)
    );
}
