//! Audit scenario: run the file-system benchmark mix on the simulated
//! kernel, validate the existing documentation, and hunt for locking bugs —
//! scoring the findings against the fault-injection oracle.
//!
//! ```sh
//! cargo run --release --example fs_audit
//! ```

use ksim::config::SimConfig;
use ksim::faults::FaultPlan;
use ksim::rules;
use ksim::subsys::Machine;
use lockdoc_core::checker::{check_rules, summarize, Verdict};
use lockdoc_core::derive::{derive, DeriveConfig};
use lockdoc_core::rulespec::parse_rules;
use lockdoc_core::violation::find_violations;
use lockdoc_trace::db::import;

fn main() {
    // A fault plan with several realistic bugs enabled.
    let plan = FaultPlan::none().enable("inode_set_flags_lockless", 0.08);
    let mut machine = Machine::boot(SimConfig::with_seed(0xA0D17).with_faults(plan));
    machine.run_mix(15_000);
    let oracle = machine.k.fault_log.clone();
    let trace = machine.finish();
    let db = import(&trace, &rules::filter_config(), 1);

    // Documentation audit (Sec. 7.3).
    let documented = parse_rules(rules::documented_rules()).unwrap();
    let checked = check_rules(&db, &documented);
    let broken: Vec<_> = checked
        .iter()
        .filter(|c| matches!(c.verdict, Verdict::Incorrect | Verdict::Ambivalent))
        .collect();
    println!(
        "documentation audit: {} of {} observed rules do not fully hold",
        broken.len(),
        checked
            .iter()
            .filter(|c| c.verdict != Verdict::NotObserved)
            .count()
    );
    for row in summarize(&checked) {
        println!(
            "  {:16} correct {:5.1}%  ambivalent {:5.1}%  incorrect {:5.1}%",
            row.type_name, row.pct_correct, row.pct_ambivalent, row.pct_incorrect
        );
    }

    // Bug hunt (Sec. 7.5).
    let mined = derive(&db, &DeriveConfig::default());
    let violations = find_violations(&db, &mined, 3);
    println!("\nbug hunt:");
    let mut iflags_found = false;
    for v in violations.iter().filter(|v| v.events > 0) {
        println!(
            "  {:24} {:5} suspicious events in {} contexts ({} members)",
            v.group_name,
            v.events,
            v.context_count(),
            v.members.len()
        );
        if v.members.contains("i_flags") {
            iflags_found = true;
        }
    }
    println!(
        "\noracle: {} faults injected at {:?}; i_flags bug {} by the violation finder",
        oracle.total(),
        oracle.fired_sites(),
        if iflags_found { "FOUND" } else { "missed" }
    );
}
