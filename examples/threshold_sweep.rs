//! Threshold-sensitivity scenario (paper Fig. 7 / Sec. 7.4): how the
//! acceptance threshold `t_ac` changes the mined rules — lower thresholds
//! accept noisier lock hypotheses, higher thresholds reject them in favour
//! of "no lock needed".
//!
//! ```sh
//! cargo run --release --example threshold_sweep
//! ```

use ksim::config::SimConfig;
use ksim::rules;
use ksim::subsys::Machine;
use lockdoc_core::derive::{derive, DeriveConfig};
use lockdoc_trace::db::import;
use lockdoc_trace::event::AccessKind;

fn main() {
    let mut machine = Machine::boot(SimConfig::with_seed(0x5EEB));
    machine.run_mix(8_000);
    let trace = machine.finish();
    let db = import(&trace, &rules::filter_config(), 1);

    println!("fraction of \"no lock\" winners per type (write rules):\n");
    print!("{:20}", "t_ac");
    let thresholds = [0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00];
    for t in thresholds {
        print!("  {t:5.2}");
    }
    println!();

    // Collect group names once (stable order).
    let baseline = derive(&db, &DeriveConfig::with_threshold(0.9));
    let names: Vec<String> = baseline
        .groups
        .iter()
        .filter(|g| !g.group_name.contains(':'))
        .map(|g| g.group_name.clone())
        .collect();

    let mut table: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for &t in &thresholds {
        let mined = derive(&db, &DeriveConfig::with_threshold(t));
        for (i, name) in names.iter().enumerate() {
            let g = mined.group(name).unwrap();
            let rules = g.rule_count(AccessKind::Write).max(1);
            let frac = g.no_lock_count(AccessKind::Write) as f64 / rules as f64;
            table[i].push(frac);
        }
    }
    for (i, name) in names.iter().enumerate() {
        print!("{name:20}");
        for v in &table[i] {
            print!("  {:4.0}%", v * 100.0);
        }
        println!();
    }

    // Show a member whose winning rule changes with the threshold.
    println!("\nexample: inode:ext4 i_blocks write rule by threshold");
    for &t in &thresholds {
        let mined = derive(&db, &DeriveConfig::with_threshold(t));
        if let Some(rule) = mined
            .group("inode:ext4")
            .and_then(|g| g.rule_for("i_blocks", AccessKind::Write))
        {
            println!(
                "  t_ac = {t:4.2}: {} (sr {:5.1}%)",
                rule.winner.hypothesis.describe(),
                rule.winner.hypothesis.sr * 100.0
            );
        }
    }
}
