//! The paper's worked example (Sec. 4, Fig. 4, Tab. 1/2): a clock counter
//! whose `seconds` member is protected by `sec_lock` and whose `minutes`
//! member requires `sec_lock -> min_lock` — plus one buggy execution that
//! forgets `min_lock`.
//!
//! ```sh
//! cargo run --example clock_counter
//! ```

use lockdoc_core::clock::clock_db;
use lockdoc_core::derive::{derive, DeriveConfig};
use lockdoc_core::hypothesis::{enumerate_exhaustive, observations_for};
use lockdoc_core::matrix::AccessMatrix;
use lockdoc_core::select::{select, SelectionConfig, Strategy};
use lockdoc_core::violation::find_violations;
use lockdoc_trace::event::AccessKind;

fn main() {
    // 1000 correct executions, one faulty (Sec. 4.1).
    let db = clock_db(1000, 1);
    println!(
        "trace imported: {} accesses in {} transactions\n",
        db.stats.accesses_imported, db.stats.txns
    );

    // Tab. 2: hypotheses for writing `minutes`.
    let group = db.observation_groups()[0];
    let matrix = AccessMatrix::build(&db, group);
    let minutes = db.data_type(group.0).member_named("minutes").unwrap() as u32;
    let observations = observations_for(&db, matrix.member(minutes).unwrap(), AccessKind::Write);
    let set = enumerate_exhaustive(minutes, AccessKind::Write, &observations, 4);
    println!("hypotheses for writing `minutes` ({} txns):", set.total);
    for (i, h) in set.hypotheses.iter().enumerate() {
        println!(
            "  #{i} {:28} sa = {:2}  sr = {:6.2}%",
            h.describe(),
            h.sa,
            h.sr * 100.0
        );
    }

    // Winner selection: the LockDoc strategy vs the naive maximum.
    let lockdoc = select(&set, &SelectionConfig::with_threshold(0.9)).unwrap();
    let naive = select(
        &set,
        &SelectionConfig {
            accept_threshold: 0.9,
            strategy: Strategy::NaiveMax,
        },
    )
    .unwrap();
    println!("\nLockDoc winner: {}", lockdoc.hypothesis.describe());
    println!(
        "naive-max winner: {} (why the paper rejects plain max)",
        naive.hypothesis.describe()
    );

    // The violation finder pinpoints the buggy execution.
    let mined = derive(&db, &DeriveConfig::default());
    let violations = find_violations(&db, &mined, 5);
    for v in violations.iter().filter(|v| v.events > 0) {
        for ex in &v.examples {
            println!(
                "\nviolation: {}.{} written holding [{}] instead of [{}]\n  at {} in {}",
                ex.group_name,
                ex.member_name,
                lockdoc_core::lockset::format_sequence(&ex.held),
                lockdoc_core::lockset::format_sequence(&ex.required),
                db.format_loc(ex.loc),
                db.format_stack(ex.stack)
            );
        }
    }
}
